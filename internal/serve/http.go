package serve

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"

	"anubis"
)

// Handler returns the REST-ish API over the tenant registry:
//
//	GET    /healthz                 liveness
//	GET    /tenants                 sorted tenant ids (JSON array)
//	PUT    /t/{id}                  create tenant (JSON TenantConfig body, may be empty)
//	GET    /t/{id}                  tenant info (scheme, blocks, push budget)
//	DELETE /t/{id}                  close tenant (flushes first)
//	GET    /t/{id}/block/{addr}     read one 64-byte block (binary)
//	PUT    /t/{id}/block/{addr}     write one block (binary body, <= 64 B)
//	POST   /t/{id}/blocks           batched writes {"writes":[{"block":N,"data":"<base64>"}]}
//	GET    /t/{id}/range?off=&n=    read n bytes at byte offset off (binary)
//	PUT    /t/{id}/range?off=       write body bytes at byte offset off
//	POST   /t/{id}/fork?child=      copy-on-write fork into a new tenant
//	POST   /t/{id}/crash            simulate power failure
//	POST   /t/{id}/recover          run recovery (JSON RecoveryReport)
//	POST   /t/{id}/flush            write back dirty metadata
//	POST   /t/{id}/audit            whole-memory integrity check (JSON AuditReport)
//	GET    /t/{id}/stats            accumulated statistics (JSON)
//	GET    /t/{id}/digest           deterministic device-state digest (JSON)
//
// Admission-control rejections surface as 429 with a Retry-After
// header; a crashed tenant answers 409 until POST /recover.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "tenants": len(s.Tenants())})
	})
	mux.HandleFunc("GET /tenants", func(w http.ResponseWriter, r *http.Request) {
		ids := s.Tenants()
		sort.Strings(ids)
		writeJSON(w, http.StatusOK, ids)
	})
	mux.HandleFunc("PUT /t/{id}", s.hCreate)
	mux.HandleFunc("GET /t/{id}", s.hInfo)
	mux.HandleFunc("DELETE /t/{id}", s.hClose)
	mux.HandleFunc("GET /t/{id}/block/{addr}", s.hReadBlock)
	mux.HandleFunc("PUT /t/{id}/block/{addr}", s.hWriteBlock)
	mux.HandleFunc("POST /t/{id}/blocks", s.hWriteBlocks)
	mux.HandleFunc("GET /t/{id}/range", s.hReadRange)
	mux.HandleFunc("PUT /t/{id}/range", s.hWriteRange)
	mux.HandleFunc("POST /t/{id}/fork", s.hFork)
	mux.HandleFunc("POST /t/{id}/crash", s.hCrash)
	mux.HandleFunc("POST /t/{id}/recover", s.hRecover)
	mux.HandleFunc("POST /t/{id}/flush", s.hFlush)
	mux.HandleFunc("POST /t/{id}/audit", s.hAudit)
	mux.HandleFunc("GET /t/{id}/stats", s.hStats)
	mux.HandleFunc("GET /t/{id}/digest", s.hDigest)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr maps registry/admission/controller errors onto HTTP status
// codes. Sheds carry Retry-After (whole seconds, floored at 1 — the
// JSON body has the precise hint in milliseconds).
func writeErr(w http.ResponseWriter, err error) {
	var shed *ShedError
	switch {
	case errors.As(err, &shed):
		secs := int(shed.RetryAfter.Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error":          err.Error(),
			"reason":         shed.Reason,
			"retry_after_ms": shed.RetryAfter.Milliseconds(),
		})
	case errors.Is(err, ErrNoTenant):
		writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
	case errors.Is(err, ErrTenantExists):
		writeJSON(w, http.StatusConflict, map[string]any{"error": err.Error()})
	case errors.Is(err, anubis.ErrCrashed):
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": err.Error(), "hint": "tenant is crashed; POST /t/{id}/recover",
		})
	case errors.Is(err, ErrShutdown), errors.Is(err, ErrTenantClosed):
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": err.Error()})
	case errors.Is(err, ErrBadTenantID):
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
	}
}

func (s *Server) hCreate(w http.ResponseWriter, r *http.Request) {
	var tc TenantConfig
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		writeErr(w, err)
		return
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &tc); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad tenant config: " + err.Error()})
			return
		}
	}
	id := r.PathValue("id")
	if err := s.CreateTenant(id, tc); err != nil {
		var shed *ShedError
		if !errors.As(err, &shed) && !errors.Is(err, ErrTenantExists) &&
			!errors.Is(err, ErrBadTenantID) && !errors.Is(err, ErrShutdown) {
			// Config errors (unknown scheme, bad size) are the client's.
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
			return
		}
		writeErr(w, err)
		return
	}
	info, err := s.TenantInfo(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) hInfo(w http.ResponseWriter, r *http.Request) {
	info, err := s.TenantInfo(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) hClose(w http.ResponseWriter, r *http.Request) {
	if err := s.CloseTenant(r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"closed": true})
}

func parseAddr(r *http.Request) (uint64, error) {
	return strconv.ParseUint(r.PathValue("addr"), 10, 64)
}

func (s *Server) hReadBlock(w http.ResponseWriter, r *http.Request) {
	addr, err := parseAddr(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad block address"})
		return
	}
	data, err := s.ReadBlock(r.PathValue("id"), addr)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (s *Server) hWriteBlock(w http.ResponseWriter, r *http.Request) {
	addr, err := parseAddr(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad block address"})
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, anubis.BlockSize+1))
	if err != nil {
		writeErr(w, err)
		return
	}
	if len(data) > anubis.BlockSize {
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": fmt.Sprintf("block write exceeds %d bytes", anubis.BlockSize)})
		return
	}
	if err := s.WriteBlock(r.PathValue("id"), addr, data); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"written": len(data)})
}

// batchWrite is one entry of a POST /t/{id}/blocks body.
type batchWrite struct {
	Block uint64 `json:"block"`
	Data  string `json:"data"` // base64, <= 64 bytes decoded
}

func (s *Server) hWriteBlocks(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Writes []batchWrite `json:"writes"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad batch: " + err.Error()})
		return
	}
	writes := make([]anubis.BlockWrite, len(req.Writes))
	for i, bw := range req.Writes {
		raw, err := base64.StdEncoding.DecodeString(bw.Data)
		if err != nil || len(raw) > anubis.BlockSize {
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error": fmt.Sprintf("batch entry %d: bad or oversized data", i)})
			return
		}
		writes[i].Block = bw.Block
		copy(writes[i].Data[:], raw)
	}
	if err := s.WriteBlocks(r.PathValue("id"), writes); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"written": len(writes)})
}

func (s *Server) hReadRange(w http.ResponseWriter, r *http.Request) {
	off, err1 := strconv.ParseUint(r.URL.Query().Get("off"), 10, 64)
	n, err2 := strconv.Atoi(r.URL.Query().Get("n"))
	if err1 != nil || err2 != nil || n < 0 || n > 8<<20 {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad off/n query"})
		return
	}
	data, err := s.ReadRange(r.PathValue("id"), off, n)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (s *Server) hWriteRange(w http.ResponseWriter, r *http.Request) {
	off, err := strconv.ParseUint(r.URL.Query().Get("off"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad off query"})
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
	if err != nil {
		writeErr(w, err)
		return
	}
	if err := s.WriteRange(r.PathValue("id"), off, data); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"written": len(data)})
}

func (s *Server) hFork(w http.ResponseWriter, r *http.Request) {
	child := r.URL.Query().Get("child")
	if err := s.ForkTenant(r.PathValue("id"), child); err != nil {
		writeErr(w, err)
		return
	}
	info, err := s.TenantInfo(child)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) hCrash(w http.ResponseWriter, r *http.Request) {
	if err := s.Crash(r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"crashed": true})
}

func (s *Server) hRecover(w http.ResponseWriter, r *http.Request) {
	rep, err := s.Recover(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) hFlush(w http.ResponseWriter, r *http.Request) {
	if err := s.Flush(r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"flushed": true})
}

func (s *Server) hAudit(w http.ResponseWriter, r *http.Request) {
	rep, err := s.Audit(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":             rep.OK(),
		"data_blocks":    rep.DataBlocks,
		"counter_blocks": rep.CounterBlocks,
		"tree_nodes":     rep.TreeNodes,
		"violations":     rep.Violations,
	})
}

func (s *Server) hStats(w http.ResponseWriter, r *http.Request) {
	st, err := s.Stats(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) hDigest(w http.ResponseWriter, r *http.Request) {
	d, err := s.Digest(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"digest": fmt.Sprintf("%#016x", d)})
}
