// Package serve multiplexes many independent secure-NVM tenants behind
// one long-running service: the paper's deployment story made concrete.
// Each tenant is a full anubis.SafeSystem (controller + device) that can
// be created, written, forked, crashed, recovered, audited, and closed
// while every other tenant keeps serving — Anubis recovery is fast
// enough that a mid-traffic crash is an in-process event, not an outage.
//
// The serving plane is deliberately boring and explicit:
//
//   - A registry maps tenant id → tenant, guarded by one mutex that is
//     held only for lookups and lifecycle changes, never during I/O.
//   - Every tenant owns ONE bounded worker goroutine draining a task
//     queue. Operations on a tenant serialize (the controller models a
//     single memory-controller pipeline anyway); a hot tenant saturates
//     its own queue and its own worker, and nothing else.
//   - Admission control sheds instead of queueing unboundedly, with
//     three signals: the global in-flight cap (process-wide), the
//     per-tenant queue depth (one slow tenant), and — for writes — the
//     tenant's WPQ back-pressure probe (SafeSystem.PushBudget == 0
//     means the next write would stall on a drain). Shed requests get
//     a typed ShedError carrying a retry-after hint; the HTTP layer
//     maps it to 429 + Retry-After, and every shed is counted in the
//     obs registry by tenant and reason.
//   - Quotas bound the blast radius: a tenant-count cap and a
//     per-tenant block-count cap, both rejected as sheds.
//
// Metrics flow into an obs.Telemetry (shared with -metrics-addr), with
// aggregate families (anubis_serve_requests_total, ..._tenants) and
// per-tenant labeled families (anubis_serve_tenant_requests_total{...}).
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"anubis"
	"anubis/internal/obs"
)

// Lifecycle and lookup errors.
var (
	// ErrTenantExists reports a create/fork against an id already in use.
	ErrTenantExists = errors.New("serve: tenant already exists")
	// ErrNoTenant reports an operation against an unknown tenant id.
	ErrNoTenant = errors.New("serve: no such tenant")
	// ErrTenantClosed reports a request that raced with tenant close.
	ErrTenantClosed = errors.New("serve: tenant closed")
	// ErrShutdown reports a request after Shutdown began.
	ErrShutdown = errors.New("serve: server is shut down")
	// ErrBadTenantID reports an empty or oversized tenant id.
	ErrBadTenantID = errors.New("serve: tenant id must be 1..64 bytes of [a-zA-Z0-9._-]")
)

// ShedError is an admission-control rejection: the request was not
// executed and should be retried after RetryAfter. Reason is one of
// "inflight" (global in-flight cap), "queue" (per-tenant worker queue
// full), "wpq" (tenant's write-pending-queue back-pressure),
// "tenant_quota" (tenant-count cap), or "blocks_quota" (per-tenant
// block-count cap).
type ShedError struct {
	Tenant     string
	Reason     string
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("serve: tenant %q shed (%s), retry after %v", e.Tenant, e.Reason, e.RetryAfter)
}

// Config bounds the service. Zero values take defaults.
type Config struct {
	// MaxTenants caps the number of live tenants (default 64).
	MaxTenants int
	// MaxBlocksPerTenant caps each tenant's protected capacity in
	// 64-byte blocks (default 1<<18 blocks = 16 MiB).
	MaxBlocksPerTenant uint64
	// QueueDepth bounds each tenant's pending-task queue (default 64).
	QueueDepth int
	// MaxInflight caps requests admitted process-wide at one moment
	// (default 256).
	MaxInflight int
	// Telemetry receives serving metrics; nil allocates a private one
	// (exposed via Server.Telemetry for a -metrics-addr endpoint).
	Telemetry *obs.Telemetry
	// Recorder is the flight recorder receiving structured request and
	// lifecycle events (enqueue/shed/exec/drain, create/fork/close,
	// crash/recover/audit). nil disables recording at zero hot-path
	// cost. The recorder is auto-attached to Telemetry so /debug/events
	// and the dashboard's event tail see it.
	Recorder *obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.MaxTenants <= 0 {
		c.MaxTenants = 64
	}
	if c.MaxBlocksPerTenant == 0 {
		c.MaxBlocksPerTenant = 1 << 18
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 256
	}
	if c.Telemetry == nil {
		c.Telemetry = obs.NewTelemetry()
	}
	return c
}

// TenantConfig is the per-tenant creation request (the PUT /t/{id}
// body). Zero values take serving defaults, not the library's 1 GB.
type TenantConfig struct {
	// Scheme names the persistence scheme ("agit-plus", "asit", ...;
	// default "agit-plus").
	Scheme string `json:"scheme,omitempty"`
	// MemoryBytes is the protected capacity (default 8 MiB; must be a
	// multiple of 4096 and within the block quota).
	MemoryBytes uint64 `json:"memory_bytes,omitempty"`
}

// ParseScheme maps a scheme name (as produced by Scheme.String) back to
// the scheme constant.
func ParseScheme(name string) (anubis.Scheme, error) {
	all := []anubis.Scheme{
		anubis.WriteBack, anubis.Strict, anubis.Osiris, anubis.AGITRead,
		anubis.AGITPlus, anubis.ASIT, anubis.Selective, anubis.Triad,
	}
	for _, s := range all {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("serve: unknown scheme %q", name)
}

func (tc TenantConfig) resolve() (anubis.Config, TenantConfig, error) {
	if tc.Scheme == "" {
		tc.Scheme = anubis.AGITPlus.String()
	}
	if tc.MemoryBytes == 0 {
		tc.MemoryBytes = 8 << 20
	}
	scheme, err := ParseScheme(tc.Scheme)
	if err != nil {
		return anubis.Config{}, tc, err
	}
	if tc.MemoryBytes%4096 != 0 {
		return anubis.Config{}, tc, fmt.Errorf("serve: memory_bytes %d not a multiple of 4096", tc.MemoryBytes)
	}
	return anubis.Config{Scheme: scheme, MemoryBytes: tc.MemoryBytes}, tc, nil
}

// task is one unit of tenant work: the worker runs fn against the
// tenant's system and sends the result on reply (buffered, never
// blocking the worker).
type task struct {
	fn    func(sys *anubis.SafeSystem) error
	reply chan error
}

type tenant struct {
	id    string
	tc    TenantConfig // resolved (scheme/bytes filled in)
	cfg   anubis.Config
	sys   *anubis.SafeSystem
	tasks chan task
	quit  chan struct{} // closed to stop the worker
	done  chan struct{} // closed when the worker has exited
	stop  sync.Once     // guards quit against CloseTenant/Shutdown racing
}

func (t *tenant) stopWorker() { t.stop.Do(func() { close(t.quit) }) }

// Server is the multi-tenant registry plus admission control. Create
// one with New; serve it over HTTP with Handler.
type Server struct {
	cfg Config
	tel *obs.Telemetry
	rec *obs.Recorder // nil = flight recorder disabled

	mu      sync.Mutex
	tenants map[string]*tenant
	closed  bool

	inflight atomic.Int64
	wg       sync.WaitGroup
}

// New returns an empty server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, tel: cfg.Telemetry, rec: cfg.Recorder, tenants: make(map[string]*tenant)}
	if s.rec != nil {
		s.tel.AttachRecorder(s.rec)
	}
	s.publishGauges()
	return s
}

// Telemetry returns the metrics sink (serve it with obs.Serve).
func (s *Server) Telemetry() *obs.Telemetry { return s.tel }

// Recorder returns the flight recorder (nil when disabled).
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// recLedgerFromMap rebuilds a phase ledger from the public report's
// name → ns map (unknown names are dropped, matching UnmarshalJSON).
func recLedgerFromMap(m map[string]uint64) obs.RecLedger {
	var l obs.RecLedger
	for name, v := range m {
		if p, ok := obs.RecPhaseByName(name); ok {
			l.Add(p, v)
		}
	}
	return l
}

func validID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// --- lifecycle -------------------------------------------------------------

// CreateTenant provisions a fresh tenant. Quota violations return a
// *ShedError (the request may succeed later, once capacity frees up).
func (s *Server) CreateTenant(id string, tc TenantConfig) error {
	if !validID(id) {
		return ErrBadTenantID
	}
	cfg, rtc, err := tc.resolve()
	if err != nil {
		return err
	}
	if blocks := cfg.MemoryBytes / anubis.BlockSize; blocks > s.cfg.MaxBlocksPerTenant {
		return s.shed(id, "create", "blocks_quota", time.Second)
	}
	sys, err := anubis.NewSafe(cfg)
	if err != nil {
		return err
	}
	return s.add(id, rtc, cfg, sys, "create")
}

// ForkTenant creates child as an independent copy-on-write clone of
// parent — checkpoint/what-if as a service primitive. The fork point is
// a consistent cut between the parent's in-flight operations; the
// parent keeps serving throughout.
func (s *Server) ForkTenant(parent, child string) error {
	if !validID(child) {
		return ErrBadTenantID
	}
	p, err := s.lookup(parent)
	if err != nil {
		s.countOp(parent, "fork", err)
		return err
	}
	// SafeSystem.Fork is lock-consistent against live traffic; taking it
	// outside the registry mutex keeps lifecycle changes from blocking
	// behind tenant I/O.
	sys := p.sys.Fork()
	if err := s.add(child, p.tc, p.cfg, sys, "fork"); err != nil {
		return err
	}
	s.countOp(parent, "fork", nil)
	if s.rec != nil {
		s.rec.Record(obs.Event{Kind: obs.EvtFork, Tenant: child, Op: "fork", Reason: "parent=" + parent})
	}
	return nil
}

// add registers a live system under id, enforcing the tenant-count
// quota, and starts its worker.
func (s *Server) add(id string, tc TenantConfig, cfg anubis.Config, sys *anubis.SafeSystem, op string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrShutdown
	}
	if _, ok := s.tenants[id]; ok {
		s.mu.Unlock()
		return ErrTenantExists
	}
	if len(s.tenants) >= s.cfg.MaxTenants {
		s.mu.Unlock()
		return s.shed(id, op, "tenant_quota", time.Second)
	}
	t := &tenant{
		id:    id,
		tc:    tc,
		cfg:   cfg,
		sys:   sys,
		tasks: make(chan task, s.cfg.QueueDepth),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	s.tenants[id] = t
	s.wg.Add(1)
	go s.worker(t)
	s.mu.Unlock()
	s.countOp(id, op, nil)
	if op != "fork" { // fork is recorded by ForkTenant with its parent
		s.rec.Record(obs.Event{Kind: obs.EvtCreate, Tenant: id, Op: op})
	}
	s.publishGauges()
	return nil
}

// CloseTenant stops a tenant's worker, flushes its metadata, and drops
// it from the registry.
func (s *Server) CloseTenant(id string) error {
	s.mu.Lock()
	t, ok := s.tenants[id]
	if ok {
		delete(s.tenants, id)
	}
	s.mu.Unlock()
	if !ok {
		return ErrNoTenant
	}
	t.stopWorker()
	<-t.done
	t.sys.Flush()
	s.countOp(id, "close", nil)
	s.rec.Record(obs.Event{Kind: obs.EvtClose, Tenant: id, Op: "close"})
	s.publishGauges()
	return nil
}

// Tenants returns the live tenant ids (unordered).
func (s *Server) Tenants() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.tenants))
	for id := range s.tenants {
		out = append(out, id)
	}
	return out
}

// Shutdown stops admission, drains and stops every tenant worker, and
// flushes all metadata — the graceful counterpart of kill -9. If dir is
// non-empty, each tenant's NVM image plus a manifest are saved there
// for a later LoadState (a served power cycle).
func (s *Server) Shutdown(dir string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrShutdown
	}
	s.closed = true
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.mu.Unlock()

	for _, t := range tenants {
		t.stopWorker()
	}
	s.wg.Wait()
	var firstErr error
	for _, t := range tenants {
		t.sys.Flush()
	}
	if dir != "" {
		if err := s.saveState(dir, tenants); err != nil {
			firstErr = err
		}
	}
	return firstErr
}

// --- state persistence -----------------------------------------------------

type manifestEntry struct {
	ID          string `json:"id"`
	Scheme      string `json:"scheme"`
	MemoryBytes uint64 `json:"memory_bytes"`
}

func (s *Server) saveState(dir string, tenants []*tenant) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	manifest := make([]manifestEntry, 0, len(tenants))
	for _, t := range tenants {
		f, err := os.Create(filepath.Join(dir, t.id+".img"))
		if err != nil {
			return err
		}
		err = t.sys.SaveImage(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("serve: saving tenant %q: %w", t.id, err)
		}
		manifest = append(manifest, manifestEntry{ID: t.id, Scheme: t.tc.Scheme, MemoryBytes: t.tc.MemoryBytes})
	}
	raw, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), raw, 0o644)
}

// LoadState restores every tenant recorded in dir's manifest: each NVM
// image is reattached with anubis.OpenImage, which runs the scheme's
// recovery (images are by definition post-power-cycle). Recoveries are
// counted in the metrics registry. Call before serving traffic.
func (s *Server) LoadState(dir string) error {
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return err
	}
	var manifest []manifestEntry
	if err := json.Unmarshal(raw, &manifest); err != nil {
		return fmt.Errorf("serve: manifest: %w", err)
	}
	for _, e := range manifest {
		cfg, rtc, err := TenantConfig{Scheme: e.Scheme, MemoryBytes: e.MemoryBytes}.resolve()
		if err != nil {
			return fmt.Errorf("serve: tenant %q: %w", e.ID, err)
		}
		f, err := os.Open(filepath.Join(dir, e.ID+".img"))
		if err != nil {
			return err
		}
		sys, rep, err := anubis.OpenImage(cfg, f)
		f.Close()
		if err != nil {
			return fmt.Errorf("serve: reattaching tenant %q: %w", e.ID, err)
		}
		if err := s.add(e.ID, rtc, cfg, anubis.Wrap(sys), "open"); err != nil {
			return err
		}
		phases := recLedgerFromMap(rep.Phases)
		s.tel.Update(func(r *obs.Registry) {
			r.Counter("anubis_serve_recoveries_total", 1)
			r.Counter(obs.Label("anubis_serve_tenant_recoveries_total", "tenant", e.ID), 1)
			r.MergeRecLedger("anubis_serve_recovery_phase_ns_total", &phases)
		})
		s.rec.Record(obs.Event{Kind: obs.EvtRecover, Tenant: e.ID, Op: "open", DurNS: rep.ModeledNS, Phases: phases})
	}
	return nil
}

// --- worker + admission ----------------------------------------------------

func (s *Server) worker(t *tenant) {
	defer s.wg.Done()
	defer close(t.done)
	for {
		select {
		case tk := <-t.tasks:
			tk.reply <- tk.fn(t.sys)
		case <-t.quit:
			// Reject stragglers that raced with close; their callers are
			// also watching t.done, so nobody is left waiting.
			for {
				select {
				case tk := <-t.tasks:
					tk.reply <- ErrTenantClosed
				default:
					s.rec.Record(obs.Event{Kind: obs.EvtDrain, Tenant: t.id})
					return
				}
			}
		}
	}
}

func (s *Server) lookup(id string) (*tenant, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrShutdown
	}
	t, ok := s.tenants[id]
	if !ok {
		return nil, ErrNoTenant
	}
	return t, nil
}

// Do admits, enqueues, and waits for one read-like operation on a
// tenant. fn runs on the tenant's worker goroutine.
func (s *Server) Do(id, op string, fn func(sys *anubis.SafeSystem) error) error {
	return s.do(id, op, false, fn)
}

// DoWrite is Do plus the WPQ back-pressure admission check: when the
// tenant's write-pending queue has no free slot at the current virtual
// clock, the request is shed and the tenant's clock is advanced by the
// drain time — modeling a client that honors Retry-After, during which
// the queue empties.
func (s *Server) DoWrite(id, op string, fn func(sys *anubis.SafeSystem) error) error {
	return s.do(id, op, true, fn)
}

func (s *Server) do(id, op string, write bool, fn func(sys *anubis.SafeSystem) error) error {
	start := time.Now()
	if n := s.inflight.Add(1); n > int64(s.cfg.MaxInflight) {
		s.inflight.Add(-1)
		return s.shed(id, op, "inflight", time.Second)
	}
	defer s.inflight.Add(-1)

	t, err := s.lookup(id)
	if err != nil {
		s.countOp(id, op, err)
		return err
	}
	if write && t.sys.PushBudget() == 0 {
		drain := t.sys.WPQDrainNS()
		// The shed response tells the client to back off; virtual time
		// keeps flowing while they do, so the queue it is waiting on has
		// drained by the retry. Without this advance a write-only tenant
		// would wedge at budget 0 forever (virtual clocks only move when
		// operations run).
		t.sys.AdvanceClock(drain)
		return s.shed(id, op, "wpq", retryAfter(drain))
	}
	tk := task{fn: fn, reply: make(chan error, 1)}
	select {
	case t.tasks <- tk:
		s.rec.Record(obs.Event{Kind: obs.EvtEnqueue, Tenant: id, Op: op})
	default:
		return s.shed(id, op, "queue", time.Second)
	}
	select {
	case err = <-tk.reply:
	case <-t.done:
		// The worker exited while our task was queued; it drains the
		// queue with ErrTenantClosed on the way out, so check once more.
		select {
		case err = <-tk.reply:
		default:
			err = ErrTenantClosed
		}
	}
	s.countOp(id, op, err)
	wall := uint64(time.Since(start).Nanoseconds())
	s.tel.Update(func(r *obs.Registry) {
		r.Observe(obs.Label("anubis_serve_op_wall_ns", "op", op), wall)
	})
	if s.rec != nil {
		e := obs.Event{Kind: obs.EvtExec, Tenant: id, Op: op, DurNS: wall}
		if err != nil {
			e.Err = err.Error()
		}
		s.rec.Record(e)
	}
	return err
}

// retryAfter converts a virtual drain time into a client-facing hint:
// virtual nanoseconds are treated as real nanoseconds (the modeled
// hardware's own timescale), floored at one millisecond so a retry is
// never a busy spin.
func retryAfter(drainNS uint64) time.Duration {
	d := time.Duration(drainNS)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// --- metrics ---------------------------------------------------------------

func (s *Server) shed(id, op, reason string, retry time.Duration) error {
	s.tel.Update(func(r *obs.Registry) {
		r.Counter("anubis_serve_shed_total", 1)
		r.Counter(obs.Label("anubis_serve_tenant_shed_total", "tenant", id, "reason", reason), 1)
	})
	s.rec.Record(obs.Event{Kind: obs.EvtShed, Tenant: id, Op: op, Reason: reason})
	return &ShedError{Tenant: id, Reason: reason, RetryAfter: retry}
}

func (s *Server) countOp(id, op string, err error) {
	s.tel.Update(func(r *obs.Registry) {
		r.Counter("anubis_serve_requests_total", 1)
		r.Counter(obs.Label("anubis_serve_tenant_requests_total", "tenant", id, "op", op), 1)
		if err != nil {
			r.Counter(obs.Label("anubis_serve_tenant_errors_total", "tenant", id, "op", op), 1)
		}
	})
}

func (s *Server) countBytes(id, dir string, n int) {
	if n <= 0 {
		return
	}
	s.tel.Update(func(r *obs.Registry) {
		r.Counter("anubis_serve_bytes_total", uint64(n))
		r.Counter(obs.Label("anubis_serve_tenant_bytes_total", "tenant", id, "dir", dir), uint64(n))
	})
}

func (s *Server) publishGauges() {
	s.mu.Lock()
	n := len(s.tenants)
	s.mu.Unlock()
	s.tel.Update(func(r *obs.Registry) {
		r.Gauge("anubis_serve_tenants", float64(n))
	})
}

// --- typed tenant operations ----------------------------------------------
// Thin wrappers over Do/DoWrite: the HTTP layer and in-process callers
// (tests, the hammer) share one code path, so admission control and
// accounting can never be bypassed.

// ReadBlock returns the verified plaintext of a tenant block.
func (s *Server) ReadBlock(id string, addr uint64) ([]byte, error) {
	var out []byte
	err := s.Do(id, "read_block", func(sys *anubis.SafeSystem) error {
		b, err := sys.ReadBlock(addr)
		out = b
		return err
	})
	s.countBytes(id, "read", len(out))
	return out, err
}

// WriteBlock encrypts and persists one tenant block.
func (s *Server) WriteBlock(id string, addr uint64, data []byte) error {
	err := s.DoWrite(id, "write_block", func(sys *anubis.SafeSystem) error {
		return sys.WriteBlock(addr, data)
	})
	if err == nil {
		s.countBytes(id, "write", len(data))
	}
	return err
}

// WriteBlocks applies a batch under one queue slot and one lock
// acquisition.
func (s *Server) WriteBlocks(id string, writes []anubis.BlockWrite) error {
	err := s.DoWrite(id, "write_blocks", func(sys *anubis.SafeSystem) error {
		return sys.WriteBlocks(writes)
	})
	if err == nil {
		s.countBytes(id, "write", len(writes)*anubis.BlockSize)
	}
	return err
}

// ReadRange reads n bytes at byte offset off.
func (s *Server) ReadRange(id string, off uint64, n int) ([]byte, error) {
	var out []byte
	err := s.Do(id, "read_range", func(sys *anubis.SafeSystem) error {
		b, err := sys.ReadRange(off, n)
		out = b
		return err
	})
	s.countBytes(id, "read", len(out))
	return out, err
}

// WriteRange writes data at byte offset off.
func (s *Server) WriteRange(id string, off uint64, data []byte) error {
	err := s.DoWrite(id, "write_range", func(sys *anubis.SafeSystem) error {
		return sys.WriteRange(off, data)
	})
	if err == nil {
		s.countBytes(id, "write", len(data))
	}
	return err
}

// Flush writes back a tenant's dirty metadata.
func (s *Server) Flush(id string) error {
	return s.Do(id, "flush", func(sys *anubis.SafeSystem) error {
		sys.Flush()
		return nil
	})
}

// Crash power-fails one tenant. Its subsequent requests fail with
// anubis.ErrCrashed until Recover; every other tenant is untouched.
func (s *Server) Crash(id string) error {
	err := s.Do(id, "crash", func(sys *anubis.SafeSystem) error {
		sys.Crash()
		return nil
	})
	if err == nil {
		s.rec.Record(obs.Event{Kind: obs.EvtCrash, Tenant: id, Op: "crash"})
	}
	return err
}

// Recover runs the tenant's recovery algorithm and counts it.
func (s *Server) Recover(id string) (anubis.RecoveryReport, error) {
	var rep anubis.RecoveryReport
	err := s.Do(id, "recover", func(sys *anubis.SafeSystem) error {
		var err error
		rep, err = sys.Recover()
		return err
	})
	if err == nil {
		phases := recLedgerFromMap(rep.Phases)
		s.tel.Update(func(r *obs.Registry) {
			r.Counter("anubis_serve_recoveries_total", 1)
			r.Counter(obs.Label("anubis_serve_tenant_recoveries_total", "tenant", id), 1)
			r.MergeRecLedger("anubis_serve_recovery_phase_ns_total", &phases)
		})
		s.rec.Record(obs.Event{Kind: obs.EvtRecover, Tenant: id, Op: "recover", DurNS: rep.ModeledNS, Phases: phases})
	}
	return rep, err
}

// Audit runs the tenant's whole-memory integrity check.
func (s *Server) Audit(id string) (anubis.AuditReport, error) {
	var rep anubis.AuditReport
	err := s.Do(id, "audit", func(sys *anubis.SafeSystem) error {
		var err error
		rep, err = sys.Audit()
		return err
	})
	if s.rec != nil {
		e := obs.Event{Kind: obs.EvtAudit, Tenant: id, Op: "audit",
			Reason: fmt.Sprintf("violations=%d", len(rep.Violations))}
		if err != nil {
			e.Err = err.Error()
		}
		s.rec.Record(e)
	}
	return rep, err
}

// Stats returns the tenant's accumulated statistics.
func (s *Server) Stats(id string) (anubis.Stats, error) {
	var st anubis.Stats
	err := s.Do(id, "stats", func(sys *anubis.SafeSystem) error {
		st = sys.Stats()
		return nil
	})
	return st, err
}

// Digest returns the tenant's deterministic device-state digest — the
// isolation oracle (one tenant's crash/recover must never move another
// tenant's digest).
func (s *Server) Digest(id string) (uint64, error) {
	var d uint64
	err := s.Do(id, "digest", func(sys *anubis.SafeSystem) error {
		d = sys.StateDigest()
		return nil
	})
	return d, err
}

// Info describes a live tenant.
type Info struct {
	ID          string `json:"id"`
	Scheme      string `json:"scheme"`
	MemoryBytes uint64 `json:"memory_bytes"`
	Blocks      uint64 `json:"blocks"`
	PushBudget  int    `json:"push_budget"`
}

// TenantInfo returns a tenant's configuration and live back-pressure.
func (s *Server) TenantInfo(id string) (Info, error) {
	t, err := s.lookup(id)
	if err != nil {
		return Info{}, err
	}
	return Info{
		ID:          t.id,
		Scheme:      t.tc.Scheme,
		MemoryBytes: t.tc.MemoryBytes,
		Blocks:      t.sys.NumBlocks(),
		PushBudget:  t.sys.PushBudget(),
	}, nil
}
