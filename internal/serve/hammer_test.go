package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"anubis"
)

// TestMultiTenantHammer drives the serving plane the way the acceptance
// scenario does, but in-process and under the race detector: many
// goroutines per tenant doing mixed reads/writes/flushes, chaos tenants
// being crashed and recovered mid-traffic, fork tenants spawning and
// closing clones — all through the same admission path as HTTP.
//
// Two invariants are asserted at the end:
//
//  1. Isolation: two quiescent tenants that take no traffic during the
//     storm keep their exact StateDigest — no cross-tenant bleed from
//     crashes, recoveries, forks, or sheds elsewhere.
//  2. Accounting: the number of ShedErrors observed by clients equals
//     anubis_serve_shed_total in the registry exactly. Nothing is shed
//     silently and nothing is double-counted.
func TestMultiTenantHammer(t *testing.T) {
	const (
		chaosTenants = 4 // crash/recover cycles mid-traffic
		forkTenants  = 4 // fork+close clones mid-traffic
		workers      = 3 // goroutines per tenant
		iters        = 120
	)
	s := newTestServer(t, Config{
		MaxTenants: chaosTenants + forkTenants + 2 + 2, // head-room for 2 forks
		QueueDepth: 2,                                  // small, to provoke "queue" sheds under contention
	})

	// Quiescent witnesses: written once, untouched during the hammer.
	for _, id := range []string{"quiet-0", "quiet-1"} {
		mustCreate(t, s, id, TenantConfig{Scheme: "asit", MemoryBytes: 1 << 20})
		for b := uint64(0); b < 16; b++ {
			mustWrite(t, s, id, b, []byte(id))
		}
	}
	dq0, err := s.Digest("quiet-0")
	if err != nil {
		t.Fatal(err)
	}
	dq1, err := s.Digest("quiet-1")
	if err != nil {
		t.Fatal(err)
	}

	var ids []string
	for i := 0; i < chaosTenants; i++ {
		ids = append(ids, fmt.Sprintf("chaos-%d", i))
	}
	for i := 0; i < forkTenants; i++ {
		ids = append(ids, fmt.Sprintf("fork-%d", i))
	}
	for _, id := range ids {
		mustCreate(t, s, id, TenantConfig{Scheme: "agit-plus", MemoryBytes: 1 << 20})
	}

	var sheds atomic.Uint64 // client-observed ShedErrors
	// tolerate records an operation result during the storm. Sheds and
	// crashed-window errors are expected; anything else fails the test.
	tolerate := func(op string, err error) {
		if err == nil {
			return
		}
		var shed *ShedError
		switch {
		case errors.As(err, &shed):
			sheds.Add(1)
		case errors.Is(err, anubis.ErrCrashed):
			// raced with a chaos crash on our own tenant — expected
		case errors.Is(err, ErrTenantExists), errors.Is(err, ErrNoTenant):
			// fork/close raced with a sibling worker — expected
		default:
			t.Errorf("%s: unexpected error %v", op, err)
		}
	}

	var wg sync.WaitGroup
	for ti, id := range ids {
		chaos := ti < chaosTenants
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id string, w int, chaos bool) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					addr := uint64((w*iters + i) % 256)
					switch {
					case chaos && w == 0 && i%40 == 20:
						// The designated chaos worker power-fails its own
						// tenant and brings it back; siblings keep hitting it
						// throughout and must only ever see ErrCrashed.
						tolerate("crash", s.Crash(id))
						_, err := s.Recover(id)
						tolerate("recover", err)
					case !chaos && w == 0 && i%60 == 30:
						child := fmt.Sprintf("%s.clone%d", id, i)
						if err := s.ForkTenant(id, child); err != nil {
							tolerate("fork", err)
						} else if err := s.CloseTenant(child); err != nil {
							tolerate("close", err)
						}
					case i%3 == 0:
						_, err := s.ReadBlock(id, addr)
						tolerate("read", err)
					case i%7 == 0:
						tolerate("flush", s.Flush(id))
					default:
						tolerate("write", s.WriteBlock(id, addr, []byte{byte(i), byte(w)}))
					}
				}
			}(id, w, chaos)
		}
	}
	wg.Wait()

	// Settle every chaos tenant (a crash may have landed after the last
	// recover) and audit all hammered tenants clean.
	for _, id := range ids {
		if _, err := s.Recover(id); err != nil {
			tolerate("recover", err)
		}
		rep, err := s.Audit(id)
		tolerate("audit", err)
		if err == nil && !rep.OK() {
			t.Errorf("tenant %s audit violations after hammer: %v", id, rep.Violations)
		}
	}

	// Invariant 1: quiescent tenants are bit-for-bit untouched.
	if d, err := s.Digest("quiet-0"); err != nil || d != dq0 {
		t.Errorf("quiet-0 digest moved during hammer: %#x -> %#x (%v)", dq0, d, err)
	}
	if d, err := s.Digest("quiet-1"); err != nil || d != dq1 {
		t.Errorf("quiet-1 digest moved during hammer: %#x -> %#x (%v)", dq1, d, err)
	}

	// Invariant 2: every shed the clients saw — and none they didn't —
	// is in the registry.
	if got, want := counterValue(s, "anubis_serve_shed_total"), sheds.Load(); got != want {
		t.Errorf("anubis_serve_shed_total = %d, clients observed %d", got, want)
	}
}
