package serve

import (
	"testing"

	"anubis/internal/obs"
)

// kinds pulls the ordered kind names of a tenant's events out of a
// snapshot (server-wide events, Tenant == "", come along when id is
// empty).
func kinds(evs []obs.Event, tenant string) []string {
	var out []string
	for _, e := range evs {
		if tenant == "" || e.Tenant == tenant {
			out = append(out, e.Kind.String())
		}
	}
	return out
}

// TestFlightRecorderCapturesRequestLife: the full request life cycle —
// create, enqueue, exec, shed, crash, recover (with its phase
// breakdown), audit, close — lands in the ring in order, and the
// recovery event's phases sum exactly to its recorded duration.
func TestFlightRecorderCapturesRequestLife(t *testing.T) {
	rec := obs.NewRecorder(256)
	s := newTestServer(t, Config{Recorder: rec})
	if s.Recorder() != rec {
		t.Fatal("Recorder() accessor lost the configured recorder")
	}

	mustCreate(t, s, "t0", TenantConfig{Scheme: "agit-plus", MemoryBytes: 1 << 20})
	mustWrite(t, s, "t0", 3, []byte("payload"))
	if _, err := s.ReadBlock("t0", 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Crash("t0"); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Recover("t0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Audit("t0"); err != nil {
		t.Fatal(err)
	}
	if err := s.CloseTenant("t0"); err != nil {
		t.Fatal(err)
	}

	evs := rec.Snapshot()
	var sawCreate, sawEnqueue, sawExec, sawCrash, sawRecover, sawAudit, sawClose bool
	var recoverEvt obs.Event
	lastSeq := uint64(0)
	for i, e := range evs {
		if i > 0 && e.Seq <= lastSeq {
			t.Fatalf("event %d: seq %d not increasing after %d", i, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		switch e.Kind {
		case obs.EvtCreate:
			sawCreate = true
		case obs.EvtEnqueue:
			sawEnqueue = true
		case obs.EvtExec:
			sawExec = true
		case obs.EvtCrash:
			sawCrash = true
		case obs.EvtRecover:
			sawRecover, recoverEvt = true, e
		case obs.EvtAudit:
			sawAudit = true
		case obs.EvtClose:
			sawClose = true
		}
	}
	if !sawCreate || !sawEnqueue || !sawExec || !sawCrash || !sawRecover || !sawAudit || !sawClose {
		t.Fatalf("missing event kinds in %v", kinds(evs, ""))
	}

	// The recover event carries the sum-exact phase breakdown.
	if recoverEvt.DurNS != rep.ModeledNS {
		t.Errorf("recover event DurNS = %d, want ModeledNS %d", recoverEvt.DurNS, rep.ModeledNS)
	}
	if got := recoverEvt.Phases.Total(); got != rep.ModeledNS {
		t.Errorf("recover event phase total = %d, want %d", got, rep.ModeledNS)
	}

	// And the same breakdown was folded into the serving registry.
	var phaseSum uint64
	s.Telemetry().Update(func(r *obs.Registry) {
		for _, p := range obs.RecPhases() {
			phaseSum += r.CounterValue(obs.Label("anubis_serve_recovery_phase_ns_total", "phase", p.String()))
		}
	})
	if phaseSum != rep.ModeledNS {
		t.Errorf("registry phase sum = %d, want %d", phaseSum, rep.ModeledNS)
	}
}

// TestFlightRecorderShedAndFork: admission sheds and tenant forks are
// recorded with their reasons.
func TestFlightRecorderShedAndFork(t *testing.T) {
	rec := obs.NewRecorder(64)
	s := newTestServer(t, Config{Recorder: rec, MaxTenants: 1})
	mustCreate(t, s, "parent", TenantConfig{MemoryBytes: 1 << 20})
	if err := s.CreateTenant("extra", TenantConfig{MemoryBytes: 1 << 20}); err == nil {
		t.Fatal("tenant quota did not shed")
	}

	var sawShed, sawFork bool
	for _, e := range rec.Snapshot() {
		if e.Kind == obs.EvtShed && e.Tenant == "extra" && e.Reason == "tenant_quota" {
			sawShed = true
		}
	}
	if !sawShed {
		t.Fatalf("no tenant_quota shed event for 'extra': %v", rec.Snapshot())
	}

	// Raise the quota via a fresh server to test fork events.
	rec2 := obs.NewRecorder(64)
	s2 := newTestServer(t, Config{Recorder: rec2})
	mustCreate(t, s2, "parent", TenantConfig{MemoryBytes: 1 << 20})
	mustWrite(t, s2, "parent", 1, []byte("base"))
	if err := s2.ForkTenant("parent", "child"); err != nil {
		t.Fatal(err)
	}
	for _, e := range rec2.Snapshot() {
		if e.Kind == obs.EvtFork && e.Tenant == "child" && e.Reason == "parent=parent" {
			sawFork = true
		}
	}
	if !sawFork {
		t.Fatalf("no fork event for 'child': %v", rec2.Snapshot())
	}
}

// TestServeWithoutRecorder: a server with no recorder behaves
// identically — requests execute, nothing is recorded, and the
// accessor returns the nil (disabled) recorder.
func TestServeWithoutRecorder(t *testing.T) {
	s := newTestServer(t, Config{})
	if s.Recorder().Enabled() {
		t.Fatal("recorder unexpectedly enabled")
	}
	mustCreate(t, s, "t0", TenantConfig{MemoryBytes: 1 << 20})
	mustWrite(t, s, "t0", 0, []byte("x"))
	if s.Recorder().Total() != 0 {
		t.Fatal("disabled recorder recorded something")
	}
}
