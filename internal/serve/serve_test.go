package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"anubis"
	"anubis/internal/obs"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() {
		// Shutdown twice is an error; tests that shut down themselves
		// just ignore this one.
		_ = s.Shutdown("")
	})
	return s
}

// counterValue reads one counter out of the server's telemetry.
func counterValue(s *Server, name string) uint64 {
	var v uint64
	s.Telemetry().Update(func(r *obs.Registry) { v = r.CounterValue(name) })
	return v
}

func mustCreate(t *testing.T, s *Server, id string, tc TenantConfig) {
	t.Helper()
	if err := s.CreateTenant(id, tc); err != nil {
		t.Fatalf("create %s: %v", id, err)
	}
}

// mustWrite writes one block, honoring back-pressure: a WPQ shed
// advances the tenant's virtual clock past the drain point, so a
// bounded retry always lands.
func mustWrite(t *testing.T, s *Server, id string, addr uint64, data []byte) {
	t.Helper()
	for attempt := 0; attempt < 4; attempt++ {
		err := s.WriteBlock(id, addr, data)
		if err == nil {
			return
		}
		var shed *ShedError
		if !errors.As(err, &shed) {
			t.Fatalf("write %s[%d]: %v", id, addr, err)
		}
	}
	t.Fatalf("write %s[%d]: shed persisted across retries", id, addr)
}

func TestCreateWriteReadRoundtrip(t *testing.T) {
	s := newTestServer(t, Config{})
	mustCreate(t, s, "alice", TenantConfig{Scheme: "agit-plus", MemoryBytes: 1 << 20})
	if err := s.WriteBlock("alice", 7, []byte("hello tenant")); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadBlock("alice", 7)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:12]) != "hello tenant" {
		t.Fatalf("read back %q", got[:12])
	}
	if _, err := s.ReadBlock("nobody", 0); !errors.Is(err, ErrNoTenant) {
		t.Fatalf("unknown tenant: %v", err)
	}
	if err := s.CreateTenant("alice", TenantConfig{}); !errors.Is(err, ErrTenantExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := s.CreateTenant("bad id!", TenantConfig{}); !errors.Is(err, ErrBadTenantID) {
		t.Fatalf("bad id: %v", err)
	}
	if err := s.CreateTenant("bob", TenantConfig{Scheme: "no-such-scheme"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestTenantQuotaShedsAndIsCounted(t *testing.T) {
	s := newTestServer(t, Config{MaxTenants: 2})
	mustCreate(t, s, "t0", TenantConfig{MemoryBytes: 1 << 20})
	mustCreate(t, s, "t1", TenantConfig{MemoryBytes: 1 << 20})
	err := s.CreateTenant("t2", TenantConfig{MemoryBytes: 1 << 20})
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != "tenant_quota" {
		t.Fatalf("over-quota create: %v", err)
	}
	if got := counterValue(s, `anubis_serve_tenant_shed_total{tenant="t2",reason="tenant_quota"}`); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	// Closing one tenant frees the slot.
	if err := s.CloseTenant("t0"); err != nil {
		t.Fatal(err)
	}
	mustCreate(t, s, "t2", TenantConfig{MemoryBytes: 1 << 20})
}

func TestBlocksQuotaSheds(t *testing.T) {
	s := newTestServer(t, Config{MaxBlocksPerTenant: 1 << 14}) // 1 MiB
	err := s.CreateTenant("big", TenantConfig{MemoryBytes: 8 << 20})
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != "blocks_quota" {
		t.Fatalf("over-size create: %v", err)
	}
	mustCreate(t, s, "ok", TenantConfig{MemoryBytes: 1 << 20})
}

func TestWPQBackpressureShedsAndSelfHeals(t *testing.T) {
	s := newTestServer(t, Config{})
	mustCreate(t, s, "w", TenantConfig{Scheme: "strict", MemoryBytes: 1 << 20})
	// A pure write burst never advances the virtual clock enough to
	// drain the WPQ, so budget must eventually hit zero and shed.
	var sheds, writes int
	for i := 0; i < 512; i++ {
		err := s.WriteBlock("w", uint64(i%128), []byte{byte(i)})
		var shed *ShedError
		switch {
		case err == nil:
			writes++
		case errors.As(err, &shed):
			if shed.Reason != "wpq" {
				t.Fatalf("write %d: shed reason %q, want wpq", i, shed.Reason)
			}
			sheds++
			// The shed advanced the tenant clock past the drain point: the
			// immediate retry must be admitted.
			if err := s.WriteBlock("w", uint64(i%128), []byte{byte(i)}); err != nil {
				t.Fatalf("write %d retry after shed: %v", i, err)
			}
			writes++
		default:
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if sheds == 0 {
		t.Fatal("512-write burst never tripped WPQ back-pressure")
	}
	if got := counterValue(s, `anubis_serve_tenant_shed_total{tenant="w",reason="wpq"}`); got != uint64(sheds) {
		t.Fatalf("wpq shed counter = %d, client observed %d", got, sheds)
	}
	// Back-pressure was admission-only: everything admitted landed.
	rep, err := s.Audit("w")
	if err != nil || !rep.OK() {
		t.Fatalf("audit after burst: %v %v", err, rep.Violations)
	}
}

func TestGlobalInflightCapSheds(t *testing.T) {
	s := newTestServer(t, Config{MaxInflight: 1})
	mustCreate(t, s, "a", TenantConfig{MemoryBytes: 1 << 20})
	// Saturate the single in-flight slot from inside an operation: the
	// nested call must shed on the global cap.
	err := s.Do("a", "outer", func(sys *anubis.SafeSystem) error {
		return s.Flush("a")
	})
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != "inflight" {
		t.Fatalf("nested call under cap 1: %v", err)
	}
	if got := counterValue(s, `anubis_serve_tenant_shed_total{tenant="a",reason="inflight"}`); got != 1 {
		t.Fatalf("inflight shed counter = %d, want 1", got)
	}
	// And the slot is released afterwards.
	if err := s.Flush("a"); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoverIsolation(t *testing.T) {
	s := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("t%d", i)
		mustCreate(t, s, id, TenantConfig{Scheme: "asit", MemoryBytes: 1 << 20})
		for b := uint64(0); b < 50; b++ {
			mustWrite(t, s, id, b, []byte(fmt.Sprintf("%s-%d", id, b)))
		}
	}
	d1, _ := s.Digest("t1")
	d2, _ := s.Digest("t2")

	if err := s.Crash("t0"); err != nil {
		t.Fatal(err)
	}
	// Crashed tenant rejects I/O with the typed error...
	if _, err := s.ReadBlock("t0", 0); !errors.Is(err, anubis.ErrCrashed) {
		t.Fatalf("read on crashed tenant: %v", err)
	}
	// ...while the others keep serving.
	if _, err := s.ReadBlock("t1", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover("t0"); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadBlock("t0", 49)
	if err != nil || string(got[:6]) != "t0-49\x00"[:6] {
		t.Fatalf("post-recovery read: %v %q", err, got[:6])
	}
	// The crash/recover cycle never moved the neighbours' digests.
	if d, _ := s.Digest("t1"); d != d1 {
		t.Fatalf("t1 digest moved across t0 crash: %#x -> %#x", d1, d)
	}
	if d, _ := s.Digest("t2"); d != d2 {
		t.Fatalf("t2 digest moved across t0 crash: %#x -> %#x", d2, d)
	}
	if got := counterValue(s, `anubis_serve_tenant_recoveries_total{tenant="t0"}`); got != 1 {
		t.Fatalf("recovery counter = %d, want 1", got)
	}
}

func TestForkTenant(t *testing.T) {
	s := newTestServer(t, Config{})
	mustCreate(t, s, "parent", TenantConfig{MemoryBytes: 1 << 20})
	if err := s.WriteBlock("parent", 0, []byte("shared")); err != nil {
		t.Fatal(err)
	}
	if err := s.ForkTenant("parent", "child"); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadBlock("child", 0)
	if err != nil || string(got[:6]) != "shared" {
		t.Fatalf("child inherited: %v %q", err, got[:6])
	}
	// Divergence is invisible to the other side.
	if err := s.WriteBlock("child", 0, []byte("childs")); err != nil {
		t.Fatal(err)
	}
	got, _ = s.ReadBlock("parent", 0)
	if string(got[:6]) != "shared" {
		t.Fatalf("child write leaked into parent: %q", got[:6])
	}
	if err := s.ForkTenant("ghost", "x"); !errors.Is(err, ErrNoTenant) {
		t.Fatalf("fork of unknown parent: %v", err)
	}
}

func TestShutdownFlushesAndPersistsState(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{})
	mustCreate(t, s, "a", TenantConfig{Scheme: "agit-plus", MemoryBytes: 1 << 20})
	mustCreate(t, s, "b", TenantConfig{Scheme: "asit", MemoryBytes: 1 << 20})
	for b := uint64(0); b < 100; b++ {
		mustWrite(t, s, "a", b, []byte(fmt.Sprintf("a%d", b)))
		mustWrite(t, s, "b", b, []byte(fmt.Sprintf("b%d", b)))
	}
	if err := s.Shutdown(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush("a"); !errors.Is(err, ErrShutdown) {
		t.Fatalf("op after shutdown: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatal(err)
	}

	// A new server process reattaches every tenant through recovery and
	// audits clean — the "power cycle under management" contract.
	s2 := New(Config{})
	if err := s2.LoadState(dir); err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown("")
	for _, id := range []string{"a", "b"} {
		rep, err := s2.Audit(id)
		if err != nil || !rep.OK() {
			t.Fatalf("tenant %s audit after restart: %v %v", id, err, rep.Violations)
		}
		got, err := s2.ReadBlock(id, 99)
		if err != nil || string(got[:3]) != id+"99" {
			t.Fatalf("tenant %s data after restart: %v %q", id, err, got[:3])
		}
	}
	if got := counterValue(s2, "anubis_serve_recoveries_total"); got != 2 {
		t.Fatalf("restart recoveries = %d, want 2", got)
	}
}

func TestParseSchemeRoundtrip(t *testing.T) {
	for _, sc := range []anubis.Scheme{
		anubis.WriteBack, anubis.Strict, anubis.Osiris, anubis.AGITRead,
		anubis.AGITPlus, anubis.ASIT, anubis.Selective, anubis.Triad,
	} {
		got, err := ParseScheme(sc.String())
		if err != nil || got != sc {
			t.Fatalf("ParseScheme(%q) = %v, %v", sc.String(), got, err)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Fatal("bogus scheme parsed")
	}
}
