package serve

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// httpClient wraps an httptest server with small helpers so the tests
// read like the API they exercise.
type httpClient struct {
	t    *testing.T
	base string
	c    *http.Client
}

func newHTTPClient(t *testing.T, s *Server) *httpClient {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &httpClient{t: t, base: ts.URL, c: ts.Client()}
}

// req issues method path with body and returns (status, response body,
// headers).
func (h *httpClient) req(method, path string, body []byte) (int, []byte, http.Header) {
	h.t.Helper()
	r, err := http.NewRequest(method, h.base+path, bytes.NewReader(body))
	if err != nil {
		h.t.Fatal(err)
	}
	resp, err := h.c.Do(r)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		h.t.Fatal(err)
	}
	return resp.StatusCode, out, resp.Header
}

func (h *httpClient) want(status int, method, path string, body []byte) []byte {
	h.t.Helper()
	got, out, _ := h.req(method, path, body)
	if got != status {
		h.t.Fatalf("%s %s = %d, want %d (body %s)", method, path, got, status, out)
	}
	return out
}

func TestHTTPLifecycleAndDataPath(t *testing.T) {
	s := newTestServer(t, Config{})
	h := newHTTPClient(t, s)

	h.want(http.StatusOK, "GET", "/healthz", nil)

	// Create, with config; read info back.
	out := h.want(http.StatusCreated, "PUT", "/t/alice",
		[]byte(`{"scheme":"asit","memory_bytes":1048576}`))
	var info Info
	if err := json.Unmarshal(out, &info); err != nil {
		t.Fatal(err)
	}
	if info.Scheme != "asit" || info.Blocks != (1<<20)/64 {
		t.Fatalf("created info: %+v", info)
	}

	// Block write/read roundtrip (binary bodies).
	h.want(http.StatusOK, "PUT", "/t/alice/block/5", []byte("over http"))
	got := h.want(http.StatusOK, "GET", "/t/alice/block/5", nil)
	if string(got[:9]) != "over http" {
		t.Fatalf("block readback %q", got[:9])
	}

	// Batched writes + range read across the batch.
	batch := fmt.Sprintf(`{"writes":[{"block":10,"data":%q},{"block":11,"data":%q}]}`,
		base64.StdEncoding.EncodeToString(bytes.Repeat([]byte{0xAB}, 64)),
		base64.StdEncoding.EncodeToString(bytes.Repeat([]byte{0xCD}, 64)))
	h.want(http.StatusOK, "POST", "/t/alice/blocks", []byte(batch))
	rng := h.want(http.StatusOK, "GET", "/t/alice/range?off=640&n=128", nil)
	if len(rng) != 128 || rng[0] != 0xAB || rng[127] != 0xCD {
		t.Fatalf("range readback len=%d first=%#x last=%#x", len(rng), rng[0], rng[127])
	}

	// Range write.
	h.want(http.StatusOK, "PUT", "/t/alice/range?off=100", []byte("spanning"))
	rng = h.want(http.StatusOK, "GET", "/t/alice/range?off=100&n=8", nil)
	if string(rng) != "spanning" {
		t.Fatalf("range write readback %q", rng)
	}

	// Fork shows up in /tenants; flush, stats, digest, audit answer.
	h.want(http.StatusCreated, "POST", "/t/alice/fork?child=bob", nil)
	out = h.want(http.StatusOK, "GET", "/tenants", nil)
	if string(bytes.TrimSpace(out)) != `["alice","bob"]` {
		t.Fatalf("tenants = %s", out)
	}
	h.want(http.StatusOK, "POST", "/t/alice/flush", nil)
	h.want(http.StatusOK, "GET", "/t/alice/stats", nil)
	h.want(http.StatusOK, "GET", "/t/alice/digest", nil)
	out = h.want(http.StatusOK, "POST", "/t/alice/audit", nil)
	if !strings.Contains(string(out), `"ok":true`) {
		t.Fatalf("audit = %s", out)
	}

	// Close; the tenant is gone.
	h.want(http.StatusOK, "DELETE", "/t/bob", nil)
	h.want(http.StatusNotFound, "GET", "/t/bob", nil)
}

func TestHTTPErrorMapping(t *testing.T) {
	s := newTestServer(t, Config{MaxTenants: 1})
	h := newHTTPClient(t, s)
	h.want(http.StatusCreated, "PUT", "/t/only", nil)

	// 404: unknown tenant, every verb.
	h.want(http.StatusNotFound, "GET", "/t/ghost/block/0", nil)
	h.want(http.StatusNotFound, "POST", "/t/ghost/recover", nil)
	h.want(http.StatusNotFound, "DELETE", "/t/ghost", nil)

	// 400: invalid id, bad config, oversized block, bad queries.
	h.want(http.StatusBadRequest, "PUT", "/t/bad%20id", nil)
	h.want(http.StatusBadRequest, "PUT", "/t/cfg", []byte(`{"scheme":"nope"}`))
	h.want(http.StatusBadRequest, "PUT", "/t/cfg", []byte(`{"memory_bytes":4097}`))
	h.want(http.StatusBadRequest, "PUT", "/t/only/block/0", bytes.Repeat([]byte{1}, 65))
	h.want(http.StatusBadRequest, "GET", "/t/only/range?off=x&n=1", nil)

	// 409: duplicate create.
	h.want(http.StatusConflict, "PUT", "/t/only", nil)

	// 429 + Retry-After: tenant quota.
	_, body, hdr := h.req("PUT", "/t/second", nil)
	if ra := hdr.Get("Retry-After"); ra == "" {
		t.Fatalf("429 without Retry-After (body %s)", body)
	}
	if !strings.Contains(string(body), `"reason":"tenant_quota"`) {
		t.Fatalf("shed body = %s", body)
	}

	// 409 while crashed (with the recover hint), then recovery restores
	// service and the data.
	h.want(http.StatusOK, "PUT", "/t/only/block/3", []byte("survives"))
	h.want(http.StatusOK, "POST", "/t/only/crash", nil)
	_, body, _ = h.req("GET", "/t/only/block/3", nil)
	if !strings.Contains(string(body), "recover") {
		t.Fatalf("crashed read body = %s", body)
	}
	h.want(http.StatusConflict, "GET", "/t/only/block/3", nil)
	h.want(http.StatusOK, "POST", "/t/only/recover", nil)
	got := h.want(http.StatusOK, "GET", "/t/only/block/3", nil)
	if string(got[:8]) != "survives" {
		t.Fatalf("post-recovery block = %q", got[:8])
	}
}

func TestHTTPWPQShedMapsTo429(t *testing.T) {
	s := newTestServer(t, Config{})
	h := newHTTPClient(t, s)
	h.want(http.StatusCreated, "PUT", "/t/w", []byte(`{"scheme":"strict","memory_bytes":1048576}`))
	var saw429 bool
	for i := 0; i < 512 && !saw429; i++ {
		code, body, hdr := h.req("PUT", fmt.Sprintf("/t/w/block/%d", i%128), []byte{byte(i)})
		switch code {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			saw429 = true
			if hdr.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After header")
			}
			if !strings.Contains(string(body), `"reason":"wpq"`) {
				t.Fatalf("shed body = %s", body)
			}
		default:
			t.Fatalf("write %d: status %d (%s)", i, code, body)
		}
	}
	if !saw429 {
		t.Fatal("write burst over HTTP never returned 429")
	}
}
