// Package ecc implements the (72,64) Hamming SECDED code used by ECC
// DIMMs: 8 check bits per 64-bit word, able to correct any single-bit
// error and detect any double-bit error.
//
// Osiris-style counter recovery (Ye et al., MICRO 2018) relies on ECC
// bits that are encrypted together with the data: decrypting a block
// with a wrong counter candidate yields pseudo-random plaintext whose
// ECC check fails with overwhelming probability, so the ECC acts as a
// sanity check identifying the counter that was actually used for
// encryption. This package provides that discriminator for the Anubis
// and Osiris recovery paths.
package ecc

import (
	"encoding/binary"
	"math/bits"
)

// WordBytes is the protected word size in bytes (64 data bits).
const WordBytes = 8

// BlockBytes is the memory block granularity protected by BlockECC.
const BlockBytes = 64

// WordsPerBlock is the number of ECC words in one memory block.
const WordsPerBlock = BlockBytes / WordBytes

// Codeword layout: 72 bit positions indexed 0..71.
// Position 0 holds the overall (SECDED) parity; positions 1,2,4,8,16,32,64
// hold the Hamming parity bits; the remaining 64 positions hold data bits
// in increasing position order.

// parityPositions lists the Hamming parity bit positions.
var parityPositions = [7]uint{1, 2, 4, 8, 16, 32, 64}

// dataPositions[i] is the codeword position of data bit i.
var dataPositions [64]uint

// positionOfData maps a codeword position to its data bit index, or -1.
var positionOfData [72]int

// parityMasks[pi] has data bit di set iff that bit participates in the
// Hamming parity at position parityPositions[pi]
// (dataPositions[di] & parityPositions[pi] != 0). Each parity is then a
// single POPCNT of word & mask instead of a 64-iteration bit loop —
// Encode sits on the Osiris/Anubis recovery discriminator path and on
// every data write's sideband generation, where the bit-serial version
// dominated whole-sweep profiles.
var parityMasks [7]uint64

func init() {
	for i := range positionOfData {
		positionOfData[i] = -1
	}
	di := 0
	for pos := uint(1); pos < 72; pos++ {
		if pos&(pos-1) == 0 { // power of two: parity position
			continue
		}
		dataPositions[di] = pos
		positionOfData[pos] = di
		di++
	}
	if di != 64 {
		panic("ecc: internal layout error")
	}
	for pi, pp := range parityPositions {
		var m uint64
		for i, pos := range dataPositions {
			if pos&pp != 0 {
				m |= 1 << uint(i)
			}
		}
		parityMasks[pi] = m
	}
}

// CheckResult classifies the outcome of a SECDED check.
type CheckResult int

const (
	// OK means the codeword is consistent.
	OK CheckResult = iota
	// CorrectedData means a single-bit error in the data was corrected.
	CorrectedData
	// CorrectedECC means a single-bit error in the check bits was corrected.
	CorrectedECC
	// Uncorrectable means a multi-bit error was detected.
	Uncorrectable
)

func (r CheckResult) String() string {
	switch r {
	case OK:
		return "ok"
	case CorrectedData:
		return "corrected-data"
	case CorrectedECC:
		return "corrected-ecc"
	case Uncorrectable:
		return "uncorrectable"
	}
	return "unknown"
}

// Encode computes the 8 check bits for a 64-bit word.
//
// Bit i (0..6) of the result is the Hamming parity for position 2^i;
// bit 7 is the overall parity over all 72 codeword bits.
func Encode(word uint64) uint8 {
	var ecc uint8
	for pi := range parityMasks {
		ecc |= uint8(bits.OnesCount64(word&parityMasks[pi])&1) << uint(pi)
	}
	// Overall parity covers every codeword bit including the seven
	// Hamming parities, so that a flipped parity bit is also caught.
	all := (bits.OnesCount64(word) + bits.OnesCount8(ecc)) & 1
	ecc |= uint8(all) << 7
	return ecc
}

// Check verifies a (word, ecc) pair without attempting correction.
// It returns true iff the pair is a valid codeword with no error.
func Check(word uint64, ecc uint8) bool {
	return Encode(word) == ecc
}

// Correct verifies a (word, ecc) pair, correcting a single-bit error if
// present. It returns the (possibly corrected) word and the check result.
func Correct(word uint64, ecc uint8) (uint64, CheckResult) {
	expect := Encode(word)
	if expect == ecc {
		return word, OK
	}
	// Syndrome: recomputed Hamming parities of the received data vs the
	// received parity bits.
	syndrome := uint((expect ^ ecc) & 0x7f)
	// Overall parity is evaluated over the *received* codeword (data bits
	// plus all eight received check bits); a valid or double-error word
	// has even parity, any single-bit error has odd parity.
	overallMismatch := (bits.OnesCount64(word)+bits.OnesCount8(ecc))&1 != 0
	switch {
	case syndrome == 0 && overallMismatch:
		// Only the overall parity bit itself flipped.
		return word, CorrectedECC
	case syndrome != 0 && overallMismatch:
		// Single-bit error at codeword position = syndrome.
		if syndrome >= 72 {
			return word, Uncorrectable
		}
		if di := positionOfData[syndrome]; di >= 0 {
			return word ^ (1 << uint(di)), CorrectedData
		}
		// The error hit one of the parity positions.
		return word, CorrectedECC
	default:
		// syndrome != 0 with matching overall parity: double error.
		return word, Uncorrectable
	}
}

// EncodeBlock computes the 8 ECC bytes protecting a 64-byte block,
// one SECDED byte per 64-bit little-endian word.
// It panics if block is not exactly BlockBytes long.
func EncodeBlock(block []byte) [WordsPerBlock]uint8 {
	if len(block) != BlockBytes {
		panic("ecc: EncodeBlock needs a 64-byte block")
	}
	var out [WordsPerBlock]uint8
	for w := 0; w < WordsPerBlock; w++ {
		out[w] = Encode(binary.LittleEndian.Uint64(block[w*WordBytes:]))
	}
	return out
}

// CheckBlock reports whether every word of a 64-byte block is consistent
// with its ECC byte. This is the Osiris sanity check: a block decrypted
// with the wrong counter fails with probability ~1-2^-56 per word.
func CheckBlock(block []byte, ecc [WordsPerBlock]uint8) bool {
	if len(block) != BlockBytes {
		panic("ecc: CheckBlock needs a 64-byte block")
	}
	for w := 0; w < WordsPerBlock; w++ {
		if !Check(binary.LittleEndian.Uint64(block[w*WordBytes:]), ecc[w]) {
			return false
		}
	}
	return true
}

// CorrectBlock corrects up to one flipped bit per word in place and
// returns the worst CheckResult observed across the block.
func CorrectBlock(block []byte, ecc [WordsPerBlock]uint8) CheckResult {
	if len(block) != BlockBytes {
		panic("ecc: CorrectBlock needs a 64-byte block")
	}
	worst := OK
	for w := 0; w < WordsPerBlock; w++ {
		word := binary.LittleEndian.Uint64(block[w*WordBytes:])
		fixed, res := Correct(word, ecc[w])
		if fixed != word {
			binary.LittleEndian.PutUint64(block[w*WordBytes:], fixed)
		}
		if res > worst {
			worst = res
		}
	}
	return worst
}
