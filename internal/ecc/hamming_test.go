package ecc

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDeterministic(t *testing.T) {
	if Encode(0) != Encode(0) {
		t.Fatal("Encode is not deterministic")
	}
	// The all-zero word must encode to all-zero check bits (linear code).
	if got := Encode(0); got != 0 {
		t.Fatalf("Encode(0) = %#x, want 0", got)
	}
}

func TestCheckRoundTrip(t *testing.T) {
	f := func(word uint64) bool {
		return Check(word, Encode(word))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCorrectNoError(t *testing.T) {
	f := func(word uint64) bool {
		got, res := Correct(word, Encode(word))
		return got == word && res == OK
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCorrectSingleDataBit flips each of the 64 data bits in turn and
// checks that Correct restores the original word.
func TestCorrectSingleDataBit(t *testing.T) {
	words := []uint64{0, ^uint64(0), 0xdeadbeefcafebabe, 1, 1 << 63}
	for _, w := range words {
		ecc := Encode(w)
		for bit := 0; bit < 64; bit++ {
			corrupt := w ^ (1 << uint(bit))
			got, res := Correct(corrupt, ecc)
			if res != CorrectedData {
				t.Fatalf("word %#x bit %d: result %v, want CorrectedData", w, bit, res)
			}
			if got != w {
				t.Fatalf("word %#x bit %d: corrected to %#x", w, bit, got)
			}
		}
	}
}

// TestCorrectSingleECCBit flips each check bit and verifies the data word
// is reported intact.
func TestCorrectSingleECCBit(t *testing.T) {
	w := uint64(0x0123456789abcdef)
	ecc := Encode(w)
	for bit := 0; bit < 8; bit++ {
		got, res := Correct(w, ecc^(1<<uint(bit)))
		if res != CorrectedECC {
			t.Fatalf("ecc bit %d: result %v, want CorrectedECC", bit, res)
		}
		if got != w {
			t.Fatalf("ecc bit %d: word changed to %#x", bit, got)
		}
	}
}

// TestDetectDoubleBit flips every pair of data bits and verifies the code
// never silently mis-corrects: it must report Uncorrectable.
func TestDetectDoubleBit(t *testing.T) {
	w := uint64(0xfeedface0badf00d)
	ecc := Encode(w)
	for i := 0; i < 64; i++ {
		for j := i + 1; j < 64; j++ {
			corrupt := w ^ (1 << uint(i)) ^ (1 << uint(j))
			_, res := Correct(corrupt, ecc)
			if res != Uncorrectable {
				t.Fatalf("bits %d,%d: result %v, want Uncorrectable", i, j, res)
			}
		}
	}
}

// TestDoubleBitMixed flips one data bit and one ECC bit.
func TestDoubleBitMixed(t *testing.T) {
	w := uint64(0x5555aaaa5555aaaa)
	ecc := Encode(w)
	for i := 0; i < 64; i++ {
		for j := 0; j < 8; j++ {
			_, res := Correct(w^(1<<uint(i)), ecc^(1<<uint(j)))
			if res == OK {
				t.Fatalf("data bit %d + ecc bit %d: undetected", i, j)
			}
		}
	}
}

func TestQuickSingleBitProperty(t *testing.T) {
	f := func(word uint64, bitSeed uint8) bool {
		bit := uint(bitSeed) % 64
		ecc := Encode(word)
		got, res := Correct(word^(1<<bit), ecc)
		return got == word && res == CorrectedData
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	block := make([]byte, BlockBytes)
	for trial := 0; trial < 100; trial++ {
		rng.Read(block)
		ecc := EncodeBlock(block)
		if !CheckBlock(block, ecc) {
			t.Fatalf("trial %d: clean block fails check", trial)
		}
	}
}

func TestBlockDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	block := make([]byte, BlockBytes)
	rng.Read(block)
	ecc := EncodeBlock(block)
	for trial := 0; trial < 200; trial++ {
		byteIdx := rng.Intn(BlockBytes)
		bit := uint(rng.Intn(8))
		block[byteIdx] ^= 1 << bit
		if CheckBlock(block, ecc) {
			t.Fatalf("trial %d: single-bit corruption not detected", trial)
		}
		block[byteIdx] ^= 1 << bit
	}
}

func TestBlockCorrectsSingleBitPerWord(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	orig := make([]byte, BlockBytes)
	rng.Read(orig)
	ecc := EncodeBlock(orig)
	block := make([]byte, BlockBytes)
	copy(block, orig)
	// Flip one bit in every word.
	for w := 0; w < WordsPerBlock; w++ {
		block[w*WordBytes+rng.Intn(WordBytes)] ^= 1 << uint(rng.Intn(8))
	}
	res := CorrectBlock(block, ecc)
	if res != CorrectedData {
		t.Fatalf("result %v, want CorrectedData", res)
	}
	for i := range orig {
		if block[i] != orig[i] {
			t.Fatalf("byte %d not restored", i)
		}
	}
}

// TestRandomPlaintextFailsCheck is the property Osiris depends on:
// an unrelated (pseudo-random) block almost never passes another
// block's ECC.
func TestRandomPlaintextFailsCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := make([]byte, BlockBytes)
	b := make([]byte, BlockBytes)
	for trial := 0; trial < 500; trial++ {
		rng.Read(a)
		rng.Read(b)
		if CheckBlock(b, EncodeBlock(a)) {
			t.Fatalf("trial %d: random block passed foreign ECC", trial)
		}
	}
}

func TestPanicsOnWrongSize(t *testing.T) {
	for _, fn := range []func(){
		func() { EncodeBlock(make([]byte, 63)) },
		func() { CheckBlock(make([]byte, 65), [WordsPerBlock]uint8{}) },
		func() { CorrectBlock(make([]byte, 0), [WordsPerBlock]uint8{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for wrong block size")
				}
			}()
			fn()
		}()
	}
}

func TestCheckResultString(t *testing.T) {
	cases := map[CheckResult]string{
		OK:             "ok",
		CorrectedData:  "corrected-data",
		CorrectedECC:   "corrected-ecc",
		Uncorrectable:  "uncorrectable",
		CheckResult(9): "unknown",
	}
	for r, want := range cases {
		if r.String() != want {
			t.Fatalf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
}

func BenchmarkEncodeWord(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Encode(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

func BenchmarkEncodeBlock(b *testing.B) {
	block := make([]byte, BlockBytes)
	binary.LittleEndian.PutUint64(block, 0x123456789)
	b.SetBytes(BlockBytes)
	for i := 0; i < b.N; i++ {
		EncodeBlock(block)
	}
}

// encodeRef is the bit-serial reference implementation Encode was
// derived from: one XOR per participating data bit per parity. The
// popcount-based Encode must agree with it on every input.
func encodeRef(word uint64) uint8 {
	var ecc uint8
	for pi, pp := range parityPositions {
		var p uint
		for di := 0; di < 64; di++ {
			if dataPositions[di]&pp != 0 {
				p ^= uint(word>>uint(di)) & 1
			}
		}
		ecc |= uint8(p) << uint(pi)
	}
	var all uint
	for di := 0; di < 64; di++ {
		all ^= uint(word>>uint(di)) & 1
	}
	for pi := 0; pi < 7; pi++ {
		all ^= uint(ecc>>uint(pi)) & 1
	}
	ecc |= uint8(all) << 7
	return ecc
}

// TestEncodeMatchesReference pins the popcount fast path to the
// bit-serial definition: single-bit words (which isolate every mask
// column), edge patterns, and a quick-check sweep.
func TestEncodeMatchesReference(t *testing.T) {
	for di := 0; di < 64; di++ {
		w := uint64(1) << uint(di)
		if got, want := Encode(w), encodeRef(w); got != want {
			t.Fatalf("Encode(bit %d) = %#x, want %#x", di, got, want)
		}
	}
	for _, w := range []uint64{0, ^uint64(0), 0xAAAAAAAAAAAAAAAA, 0x5555555555555555} {
		if got, want := Encode(w), encodeRef(w); got != want {
			t.Fatalf("Encode(%#x) = %#x, want %#x", w, got, want)
		}
	}
	if err := quick.Check(func(w uint64) bool {
		return Encode(w) == encodeRef(w)
	}, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}
