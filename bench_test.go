package anubis

// One benchmark per evaluation artifact of the paper (Table 1 and
// Figures 5, 7, 10, 11, 12, 13) plus microbenchmarks of the hot paths.
// Each figure benchmark runs the same code path that cmd/anubis-bench
// uses and reports the headline metric via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the evaluation at a reduced-but-representative scale
// (use cmd/anubis-bench for full-scale runs).

import (
	"bytes"
	"io"
	"testing"

	"anubis/internal/figures"
	"anubis/internal/memctrl"
	"anubis/internal/recmodel"
	"anubis/internal/sim"
	"anubis/internal/trace"
)

func benchRC() figures.RunConfig {
	rc := figures.DefaultRunConfig()
	rc.Requests = 8000
	rc.Apps = []string{"mcf", "lbm", "libquantum", "milc", "omnetpp"}
	rc.MemoryBytes = 128 << 20
	return rc
}

// BenchmarkTable1Config regenerates Table 1 (configuration echo).
func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figures.Table1(io.Discard)
	}
}

// BenchmarkFig5OsirisRecovery evaluates the Osiris recovery-time model
// across the paper's capacity axis and reports the 8 TB point.
func BenchmarkFig5OsirisRecovery(b *testing.B) {
	var rows []figures.Fig5Row
	for i := 0; i < b.N; i++ {
		rows = figures.Fig5()
	}
	last := rows[len(rows)-1]
	b.ReportMetric(recmodel.Seconds(last.NS), "s-recovery-8TB")
}

// BenchmarkFig7CleanEvictions measures the clean-eviction fractions and
// reports mcf's (the paper's motivating case for AGIT-Plus).
func BenchmarkFig7CleanEvictions(b *testing.B) {
	rc := benchRC()
	var rows []figures.Fig7Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = figures.Fig7(rc)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.App == "mcf" {
			b.ReportMetric(r.CleanFrac, "clean-frac-mcf")
		}
	}
}

// BenchmarkFig10AGIT runs the AGIT performance evaluation and reports
// the average normalized overheads per scheme.
func BenchmarkFig10AGIT(b *testing.B) {
	rc := benchRC()
	var avg map[memctrl.Scheme]float64
	for i := 0; i < b.N; i++ {
		var err error
		_, avg, err = figures.Fig10(rc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(avg[memctrl.SchemeStrict], "x-strict")
	b.ReportMetric(avg[memctrl.SchemeOsiris], "x-osiris")
	b.ReportMetric(avg[memctrl.SchemeAGITRead], "x-agit-read")
	b.ReportMetric(avg[memctrl.SchemeAGITPlus], "x-agit-plus")
}

// BenchmarkFig11ASIT runs the ASIT performance evaluation.
func BenchmarkFig11ASIT(b *testing.B) {
	rc := benchRC()
	var avg map[memctrl.Scheme]float64
	for i := 0; i < b.N; i++ {
		var err error
		_, avg, err = figures.Fig11(rc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(avg[memctrl.SchemeStrict], "x-strict")
	b.ReportMetric(avg[memctrl.SchemeASIT], "x-asit")
}

// BenchmarkFig12RecoveryTime evaluates the cache-size sweep of Anubis
// recovery (analytic) and additionally executes a real crash+recovery,
// reporting the paper's two anchor points.
func BenchmarkFig12RecoveryTime(b *testing.B) {
	var rows []figures.Fig12Row
	for i := 0; i < b.N; i++ {
		rows = figures.Fig12()
	}
	b.ReportMetric(recmodel.Seconds(rows[0].AGITNS), "s-agit-256KB")
	b.ReportMetric(recmodel.Seconds(rows[len(rows)-1].AGITNS), "s-agit-4MB")
}

// BenchmarkFig12MeasuredRecovery executes real recoveries (AGIT and
// ASIT) at test scale and reports their modeled times.
func BenchmarkFig12MeasuredRecovery(b *testing.B) {
	rc := figures.QuickRunConfig()
	rc.MemoryBytes = 32 << 20
	rc.Requests = 3000
	var agit, asit *memctrl.RecoveryReport
	for i := 0; i < b.N; i++ {
		var err error
		agit, err = figures.MeasuredRecovery(memctrl.SchemeAGITPlus, sim.FamilyBonsai, rc)
		if err != nil {
			b.Fatal(err)
		}
		asit, err = figures.MeasuredRecovery(memctrl.SchemeASIT, sim.FamilySGX, rc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(agit.ModeledNS())/1e6, "ms-agit")
	b.ReportMetric(float64(asit.ModeledNS())/1e6, "ms-asit")
}

// BenchmarkFig13CacheSensitivity sweeps metadata cache sizes.
func BenchmarkFig13CacheSensitivity(b *testing.B) {
	rc := figures.QuickRunConfig()
	rc.Requests = 3000
	rc.Apps = []string{"libquantum", "mcf"}
	var rows []figures.Fig13Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = figures.Fig13(rc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Norm[memctrl.SchemeASIT], "x-asit-256KB")
	b.ReportMetric(rows[len(rows)-1].Norm[memctrl.SchemeASIT], "x-asit-4MB")
}

// --- hot-path microbenchmarks -------------------------------------------------

func benchSystem(b *testing.B, s Scheme) *System {
	b.Helper()
	sys, err := New(Config{Scheme: s, MemoryBytes: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkWriteBlock measures the full secure write path (encrypt,
// ECC, MAC, eager tree update, shadow write, atomic commit).
func BenchmarkWriteBlock(b *testing.B) {
	for _, s := range []Scheme{WriteBack, Strict, Osiris, AGITPlus, ASIT} {
		b.Run(s.String(), func(b *testing.B) {
			sys := benchSystem(b, s)
			data := make([]byte, BlockSize)
			b.SetBytes(BlockSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sys.WriteBlock(uint64(i)%sys.NumBlocks(), data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReadBlock measures the verified read path (decrypt, ECC,
// MAC, tree verification).
func BenchmarkReadBlock(b *testing.B) {
	for _, s := range []Scheme{WriteBack, AGITPlus, ASIT} {
		b.Run(s.String(), func(b *testing.B) {
			sys := benchSystem(b, s)
			data := make([]byte, BlockSize)
			for i := uint64(0); i < 4096; i++ {
				if err := sys.WriteBlock(i, data); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(BlockSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.ReadBlock(uint64(i) & 4095); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCrashRecover measures an end-to-end crash+recovery cycle.
func BenchmarkCrashRecover(b *testing.B) {
	for _, s := range []Scheme{AGITPlus, ASIT} {
		b.Run(s.String(), func(b *testing.B) {
			data := make([]byte, BlockSize)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sys, err := New(Config{Scheme: s, MemoryBytes: 8 << 20,
					CounterCacheBytes: 16 << 10, TreeCacheBytes: 16 << 10, MetaCacheBytes: 32 << 10})
				if err != nil {
					b.Fatal(err)
				}
				for j := uint64(0); j < 1000; j++ {
					sys.WriteBlock(j*29%sys.NumBlocks(), data)
				}
				b.StartTimer()
				sys.Crash()
				if _, err := sys.Recover(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTraceGeneration measures workload generation throughput.
func BenchmarkTraceGeneration(b *testing.B) {
	p, _ := trace.ByName("milc")
	g := trace.NewGenerator(p, 1)
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

// --- ablation benchmarks -------------------------------------------------------

// BenchmarkAblationStopLoss sweeps the Osiris stop-loss limit.
func BenchmarkAblationStopLoss(b *testing.B) {
	rc := figures.QuickRunConfig()
	rc.Requests = 3000
	var rows []figures.StopLossRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = figures.AblationStopLoss(rc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Normalized, "x-stoploss-1")
	b.ReportMetric(rows[len(rows)-1].Normalized, "x-stoploss-16")
}

// BenchmarkAblationRecoveryBackend compares ECC-trial vs phase-bit
// counter recovery.
func BenchmarkAblationRecoveryBackend(b *testing.B) {
	rc := figures.QuickRunConfig()
	rc.Requests = 3000
	var rows []figures.BackendRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = figures.AblationRecoveryBackend(rc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Normalized, "x-ecc")
	b.ReportMetric(rows[1].Normalized, "x-phase")
}

// BenchmarkAblationEndurance measures per-scheme write amplification
// and hot-spot wear.
func BenchmarkAblationEndurance(b *testing.B) {
	rc := figures.QuickRunConfig()
	rc.Requests = 3000
	var rows []figures.EnduranceRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = figures.AblationEndurance(rc)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Scheme == memctrl.SchemeStrict {
			b.ReportMetric(r.WritesPerRequest, "writes/req-strict")
		}
		if r.Scheme == memctrl.SchemeAGITPlus && !r.WearLeveled {
			b.ReportMetric(r.WritesPerRequest, "writes/req-agit-plus")
		}
	}
}

// BenchmarkAuditNVM measures the whole-memory audit (fsck) rate.
func BenchmarkAuditNVM(b *testing.B) {
	sys := benchSystem(b, AGITPlus)
	data := make([]byte, BlockSize)
	for i := uint64(0); i < 4096; i++ {
		sys.WriteBlock(i, data)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sys.Audit()
		if err != nil || !rep.OK() {
			b.Fatal(err)
		}
	}
}

// BenchmarkImageSaveLoad measures NVM image serialization.
func BenchmarkImageSaveLoad(b *testing.B) {
	cfg := Config{Scheme: AGITPlus, MemoryBytes: 8 << 20}
	sys, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, BlockSize)
	for i := uint64(0); i < 4096; i++ {
		sys.WriteBlock(i, data)
	}
	sys.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := sys.SaveImage(&buf); err != nil {
			b.Fatal(err)
		}
		if _, _, err := OpenImage(cfg, &buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTriad sweeps the Triad-NVM persisted-levels knob.
func BenchmarkAblationTriad(b *testing.B) {
	rc := figures.QuickRunConfig()
	rc.Requests = 3000
	var rows []figures.TriadRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = figures.AblationTriad(rc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Normalized, "x-triad-0")
	b.ReportMetric(rows[len(rows)-1].Normalized, "x-triad-3")
}
