// Package anubis is a from-scratch implementation of Anubis (Zubair &
// Awad, ISCA 2019): a secure non-volatile main-memory controller with
// ultra-low overhead crash recovery of its security metadata.
//
// A System encrypts every 64-byte block with counter-mode encryption,
// protects the encryption counters with an integrity tree (general
// Bonsai Merkle tree or SGX-style parallelizable tree), persists data
// and metadata atomically through a Write Pending Queue, and — with the
// Anubis schemes — shadow-tracks the on-chip metadata caches in NVM so
// that after a power failure the system recovers in time proportional
// to the cache size instead of the memory size.
//
// Quick start:
//
//	sys, _ := anubis.New(anubis.Config{Scheme: anubis.AGITPlus, MemoryBytes: 1 << 24})
//	sys.WriteBlock(0, data)     // encrypted, integrity-protected, persistent
//	sys.Crash()                 // power failure: caches and queues are lost
//	rep, _ := sys.Recover()     // milliseconds-equivalent metadata repair
//	got, _ := sys.ReadBlock(0)  // verified against the on-chip root
//
// Six schemes are available, matching the paper's evaluation: the
// WriteBack baseline (unrecoverable), Strict persistence, Osiris
// (counters recoverable; tree rebuild is O(memory) on general trees and
// impossible on SGX trees), and the Anubis schemes AGITRead, AGITPlus
// (general tree) and ASIT (SGX tree).
package anubis

import (
	"errors"
	"fmt"
	"io"

	"anubis/internal/memctrl"
	"anubis/internal/nvm"
	"anubis/internal/obs"
	"anubis/internal/recmodel"
)

// BlockSize is the protected access granularity in bytes.
const BlockSize = memctrl.BlockBytes

// Scheme selects the persistence/recovery mechanism.
type Scheme int

const (
	// WriteBack is the unprotected-against-crashes baseline.
	WriteBack Scheme = iota
	// Strict persists every metadata update immediately (recoverable,
	// highest overhead).
	Strict
	// Osiris adds stop-loss counter persistence; recovery is
	// whole-memory (hours at TB scale) and only works on general trees.
	Osiris
	// AGITRead is Anubis for general integrity trees, tracking metadata
	// cache fills in shadow tables.
	AGITRead
	// AGITPlus tracks only first modifications (the paper's best
	// general-tree scheme: ~3.4% overhead).
	AGITPlus
	// ASIT is Anubis for SGX-style parallelizable trees: the only
	// practical scheme that makes them recoverable.
	ASIT
	// Triad is a Triad-NVM-style baseline (§7's concurrent work):
	// counters plus the first TriadLevels tree levels persist on every
	// write; recovery rebuilds only the levels above. The knob trades
	// run-time overhead for recovery time — but recovery stays
	// memory-bound, unlike Anubis.
	Triad
	// Selective is the selective counter atomicity baseline (HPCA'18):
	// only a designated persistent region's counters are written
	// through, recovery rebuilds the whole tree and re-anchors the root.
	// Relaxed counters open a post-crash replay window (see the tests) —
	// the weakness that motivated Osiris and Anubis.
	Selective
)

func (s Scheme) String() string { return s.internal().String() }

func (s Scheme) internal() memctrl.Scheme {
	switch s {
	case WriteBack:
		return memctrl.SchemeWriteBack
	case Strict:
		return memctrl.SchemeStrict
	case Osiris:
		return memctrl.SchemeOsiris
	case AGITRead:
		return memctrl.SchemeAGITRead
	case AGITPlus:
		return memctrl.SchemeAGITPlus
	case ASIT:
		return memctrl.SchemeASIT
	case Selective:
		return memctrl.SchemeSelective
	case Triad:
		return memctrl.SchemeTriad
	}
	return memctrl.Scheme(-1)
}

// TreeKind selects the integrity tree family for the baseline schemes
// (WriteBack, Strict, Osiris exist in both of the paper's evaluations).
// AGIT schemes force GeneralTree; ASIT forces SGXTree.
type TreeKind int

const (
	// GeneralTree is the non-parallelizable Bonsai Merkle tree.
	GeneralTree TreeKind = iota
	// SGXTree is the parallelizable SGX-style nonce tree.
	SGXTree
)

// Config parameterizes a System. Zero values take the paper's Table 1
// defaults (except MemoryBytes, which defaults to 1 GB to keep casual
// use light; the geometry scales to any multiple of 4 KB).
type Config struct {
	Scheme Scheme
	Tree   TreeKind

	// MemoryBytes is the protected capacity (multiple of 4096).
	MemoryBytes uint64

	// Cache sizes in bytes (0 = Table 1 defaults: 256 KB counter,
	// 256 KB tree, 512 KB combined metadata cache).
	CounterCacheBytes int
	TreeCacheBytes    int
	MetaCacheBytes    int

	// StopLoss is the Osiris stop-loss limit (0 = 4).
	StopLoss int

	// PhaseRecovery selects phase-bit counter recovery (§2.4's data-bus
	// extension) instead of Osiris ECC trials for the general-tree
	// schemes: no stop-loss writes at run time, single-trial recovery.
	PhaseRecovery bool

	// WearLevelingPeriod enables Start-Gap wear leveling of the data
	// region when positive: the gap line rotates every N data writes,
	// spreading hot-block wear across the medium. Zero disables it.
	WearLevelingPeriod int

	// TriadLevels is the Triad scheme's resilience knob: tree levels
	// persisted on every write.
	TriadLevels int

	// PersistentBytes bounds the Selective scheme's persistent region
	// (rounded down to blocks). Zero treats the whole memory as
	// persistent.
	PersistentBytes uint64
}

// System is a secure NVM memory: encrypted, integrity-protected,
// crash-recoverable per the configured scheme. Not safe for concurrent
// use.
type System struct {
	ctrl   memctrl.Controller
	scheme Scheme
}

// ErrUnrecoverable reports that recovery failed verification.
var ErrUnrecoverable = memctrl.ErrUnrecoverable

// ErrNotRecoverable reports that the scheme has no recovery mechanism.
var ErrNotRecoverable = memctrl.ErrNotRecoverable

// ErrCrashed reports I/O issued between Crash and Recover. Match with
// errors.Is to distinguish a mid-crash tenant from a real failure.
var ErrCrashed = memctrl.ErrCrashed

// IsIntegrityViolation reports whether an error came from a failed
// integrity check (tampering, replay, or inconsistent crash state).
func IsIntegrityViolation(err error) bool {
	var ie *memctrl.IntegrityError
	return errors.As(err, &ie)
}

// toInternal converts the public configuration to the controller's and
// resolves the effective tree kind.
func (cfg Config) toInternal() (memctrl.Config, TreeKind) {
	mc := memctrl.DefaultConfig(cfg.Scheme.internal())
	if cfg.MemoryBytes == 0 {
		cfg.MemoryBytes = 1 << 30
	}
	mc.MemoryBytes = cfg.MemoryBytes
	if cfg.CounterCacheBytes > 0 {
		mc.CounterCacheBlocks = cfg.CounterCacheBytes / BlockSize
	}
	if cfg.TreeCacheBytes > 0 {
		mc.TreeCacheBlocks = cfg.TreeCacheBytes / BlockSize
	}
	if cfg.MetaCacheBytes > 0 {
		mc.MetaCacheBlocks = cfg.MetaCacheBytes / BlockSize
	}
	if cfg.StopLoss > 0 {
		mc.StopLoss = cfg.StopLoss
	}
	if cfg.PhaseRecovery {
		mc.Recovery = memctrl.RecoveryPhase
	}
	mc.WearPeriod = cfg.WearLevelingPeriod
	mc.PersistentBlocks = cfg.PersistentBytes / BlockSize
	mc.TriadLevels = cfg.TriadLevels

	tree := cfg.Tree
	switch cfg.Scheme {
	case AGITRead, AGITPlus, Selective, Triad:
		tree = GeneralTree
	case ASIT:
		tree = SGXTree
	}
	return mc, tree
}

// New constructs a System over a fresh, zeroed NVM.
func New(cfg Config) (*System, error) {
	mc, tree := cfg.toInternal()
	var (
		ctrl memctrl.Controller
		err  error
	)
	if tree == SGXTree {
		ctrl, err = memctrl.NewSGX(mc)
	} else {
		ctrl, err = memctrl.NewBonsai(mc)
	}
	if err != nil {
		return nil, err
	}
	return &System{ctrl: ctrl, scheme: cfg.Scheme}, nil
}

// Scheme returns the configured scheme.
func (s *System) Scheme() Scheme { return s.scheme }

// NumBlocks returns the number of 64-byte blocks.
func (s *System) NumBlocks() uint64 { return s.ctrl.NumBlocks() }

// Size returns the protected capacity in bytes.
func (s *System) Size() uint64 { return s.ctrl.NumBlocks() * BlockSize }

// ReadBlock returns the verified plaintext of block i.
func (s *System) ReadBlock(i uint64) ([]byte, error) {
	blk, err := s.ctrl.ReadBlock(i)
	if err != nil {
		return nil, err
	}
	out := make([]byte, BlockSize)
	copy(out, blk[:])
	return out, nil
}

// ReadBlockInto reads the verified plaintext of block i into dst,
// avoiding ReadBlock's per-call allocation — the right call in batch
// and hot-path code.
func (s *System) ReadBlockInto(i uint64, dst *[BlockSize]byte) error {
	blk, err := s.ctrl.ReadBlock(i)
	if err != nil {
		return err
	}
	*dst = blk
	return nil
}

// WriteBlock encrypts and persists block i. data must be at most
// BlockSize bytes; shorter slices are zero-padded.
func (s *System) WriteBlock(i uint64, data []byte) error {
	if len(data) > BlockSize {
		return fmt.Errorf("anubis: block write of %d bytes exceeds BlockSize", len(data))
	}
	var blk [BlockSize]byte
	copy(blk[:], data)
	return s.ctrl.WriteBlock(i, blk)
}

// BlockWrite names one block update in a WriteBlocks batch.
type BlockWrite struct {
	Block uint64
	Data  [BlockSize]byte
}

// WriteBlocks applies the batch in order, stopping at the first error
// (earlier writes remain applied — identical semantics to issuing the
// WriteBlock calls one by one). Batching exists for callers that want
// one round trip — and, through SafeSystem, one lock acquisition — per
// group of writes; with an epoch pipeline configured it also keeps a
// burst inside as few coalescing windows as possible.
func (s *System) WriteBlocks(writes []BlockWrite) error {
	for _, w := range writes {
		if err := s.ctrl.WriteBlock(w.Block, w.Data); err != nil {
			return fmt.Errorf("anubis: batched write of block %d: %w", w.Block, err)
		}
	}
	return nil
}

// ReadRange reads n bytes starting at byte offset off, spanning blocks.
func (s *System) ReadRange(off uint64, n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("anubis: negative length %d", n)
	}
	out := make([]byte, 0, n)
	for n > 0 {
		blk := off / BlockSize
		inOff := int(off % BlockSize)
		take := BlockSize - inOff
		if take > n {
			take = n
		}
		b, err := s.ReadBlock(blk)
		if err != nil {
			return nil, err
		}
		out = append(out, b[inOff:inOff+take]...)
		off += uint64(take)
		n -= take
	}
	return out, nil
}

// WriteRange writes data at byte offset off, spanning blocks; partial
// blocks are read-modify-written.
func (s *System) WriteRange(off uint64, data []byte) error {
	for len(data) > 0 {
		blk := off / BlockSize
		inOff := int(off % BlockSize)
		take := BlockSize - inOff
		if take > len(data) {
			take = len(data)
		}
		var buf []byte
		if inOff == 0 && take == BlockSize {
			buf = data[:BlockSize]
		} else {
			cur, err := s.ReadBlock(blk)
			if err != nil {
				return err
			}
			copy(cur[inOff:], data[:take])
			buf = cur
		}
		if err := s.WriteBlock(blk, buf); err != nil {
			return err
		}
		off += uint64(take)
		data = data[take:]
	}
	return nil
}

// Flush writes back all dirty metadata (orderly shutdown).
func (s *System) Flush() { s.ctrl.FlushCaches() }

// PushBudget reports how many block writes the Write Pending Queue can
// absorb at the controller's current virtual clock without stalling:
// the number of free WPQ slots. Zero means the next write would block
// on a drain — the back-pressure signal a serving layer feeds into
// admission control (shed with retry-after instead of queueing). It is
// a pure probe: sampling it never perturbs the timing model. (Distinct
// from the device-level SetPushBudget crash-test hook, which truncates
// commit drains to simulate mid-commit power loss.)
func (s *System) PushBudget() int {
	d := s.ctrl.Device()
	free := d.Timing().WPQEntries - d.WPQOccupancy(s.ctrl.Now())
	if free < 0 {
		free = 0
	}
	return free
}

// WPQDrainNS reports how much virtual time must pass before the Write
// Pending Queue is fully drained (0 when it is already empty). A caller
// shedding on PushBudget()==0 pairs it with AdvanceClock to model the
// client's back-off interval actually elapsing.
func (s *System) WPQDrainNS() uint64 {
	now := s.ctrl.Now()
	if t := s.ctrl.Device().WPQDrainTime(); t > now {
		return t - now
	}
	return 0
}

// AdvanceClock advances the controller's virtual clock by ns of CPU
// think time: queued writes keep draining while the caller is away.
// A long-running service uses it to map real-world idle gaps (request
// spacing, back-off sleeps) into the simulated timeline.
func (s *System) AdvanceClock(ns uint64) { s.ctrl.AdvanceTo(s.ctrl.Now() + ns) }

// StateDigest returns a deterministic digest of the device's entire
// persistent and staged state (NVM regions, sideband, registers,
// journal, commit staging). Two systems with equal digests hold
// byte-identical persistence domains — the equality oracle behind the
// fork/crash isolation tests.
func (s *System) StateDigest() uint64 { return s.ctrl.Device().StateDigest() }

// Fork returns an independent copy-on-write clone of the system: the
// NVM image is shared until either side writes to a page, and all
// volatile controller state is duplicated, so the child behaves exactly
// like a system that lived through the parent's history. Useful for
// checkpoint/what-if exploration — e.g. crash-injecting many trials
// against one warmed-up state. Parent and child may each be forked
// again; a single Fork call must not race with operations on the
// parent (clone first, then run the two on separate goroutines).
func (s *System) Fork() *System {
	return &System{ctrl: s.ctrl.Clone(), scheme: s.scheme}
}

// Crash simulates a power failure: all volatile state (metadata caches,
// uncommitted writes) is lost; NVM, the WPQ, and on-chip persistent
// registers survive. The System refuses I/O until Recover is called.
func (s *System) Crash() { s.ctrl.Crash() }

// RecoveryReport describes a completed recovery.
type RecoveryReport struct {
	// FetchOps and CryptoOps count the NVM block fetches and hash/
	// decrypt operations recovery performed.
	FetchOps  uint64
	CryptoOps uint64
	// CountersFixed, NodesRebuilt, EntriesScanned detail the repair.
	CountersFixed  uint64
	NodesRebuilt   uint64
	EntriesScanned uint64
	// ModeledNS prices the recovery at the paper's 100 ns/op.
	ModeledNS uint64
	// Phases decomposes ModeledNS into named recovery phases
	// ("counter_osiris_scan", "merkle_rebuild", ...; DESIGN.md §16).
	// The values always sum exactly to ModeledNS.
	Phases map[string]uint64
}

// RecoveryPhases returns the canonical recovery-phase names in display
// order — the key order tools should use when rendering
// RecoveryReport.Phases as a table.
func RecoveryPhases() []string {
	ps := obs.RecPhases()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.String()
	}
	return names
}

// Recover runs the scheme's recovery algorithm after a Crash.
func (s *System) Recover() (RecoveryReport, error) {
	rep, err := s.ctrl.Recover()
	out := RecoveryReport{}
	if rep != nil {
		out = RecoveryReport{
			FetchOps:       rep.FetchOps,
			CryptoOps:      rep.CryptoOps,
			CountersFixed:  rep.CountersFixed,
			NodesRebuilt:   rep.NodesRebuilt,
			EntriesScanned: rep.EntriesScanned,
			ModeledNS:      rep.ModeledNS(),
			Phases:         rep.Phases.Map(),
		}
	}
	return out, err
}

// Stats summarizes run-time activity.
type Stats struct {
	ReadRequests   uint64
	WriteRequests  uint64
	NVMReads       uint64
	NVMWrites      uint64
	ShadowWrites   uint64
	StopLossWrites uint64
	ElapsedNS      uint64 // modeled execution time
}

// Stats returns accumulated statistics.
func (s *System) Stats() Stats {
	st := s.ctrl.Stats()
	return Stats{
		ReadRequests:   st.ReadRequests,
		WriteRequests:  st.WriteRequests,
		NVMReads:       st.NVM.Reads,
		NVMWrites:      st.NVM.Writes,
		ShadowWrites:   st.ShadowWrites,
		StopLossWrites: st.StopLossWrites,
		ElapsedNS:      s.ctrl.Now(),
	}
}

// SaveImage serializes the NVM contents (everything in the persistence
// domain: data, metadata, shadow tables, on-chip registers, and any
// committed-but-undrained write group) to w. Call Flush first for a
// clean image, or save mid-crash to capture a recovery scenario.
func (s *System) SaveImage(w io.Writer) error {
	return s.ctrl.Device().Save(w)
}

// OpenImage restores a System from an image written by SaveImage. The
// configuration must match the one the image was created with. Recovery
// runs automatically (the image is by definition post-power-cycle); the
// report describes the repair work performed.
func OpenImage(cfg Config, r io.Reader) (*System, RecoveryReport, error) {
	dev, err := nvm.LoadDevice(r)
	if err != nil {
		return nil, RecoveryReport{}, err
	}
	mc, tree := cfg.toInternal()
	var ctrl memctrl.Controller
	if tree == SGXTree {
		ctrl, err = memctrl.OpenSGX(mc, dev)
	} else {
		ctrl, err = memctrl.OpenBonsai(mc, dev)
	}
	if err != nil {
		return nil, RecoveryReport{}, err
	}
	sys := &System{ctrl: ctrl, scheme: cfg.Scheme}
	rep, err := sys.Recover()
	if err != nil {
		return nil, rep, err
	}
	return sys, rep, nil
}

// AuditReport summarizes a whole-memory integrity audit.
type AuditReport struct {
	DataBlocks    uint64
	CounterBlocks uint64
	TreeNodes     uint64
	Violations    []string
}

// OK reports a fully consistent image.
func (r AuditReport) OK() bool { return len(r.Violations) == 0 }

// Audit runs a whole-memory integrity check (fsck for secure memory):
// dirty metadata is flushed, then every data block, counter block, and
// tree node in NVM is verified against the on-chip roots.
func (s *System) Audit() (AuditReport, error) {
	rep, err := s.ctrl.AuditNVM()
	if err != nil {
		return AuditReport{}, err
	}
	return AuditReport{
		DataBlocks:    rep.DataBlocks,
		CounterBlocks: rep.CounterBlocks,
		TreeNodes:     rep.TreeNodes,
		Violations:    rep.Violations,
	}, nil
}

// TamperData flips bits in the stored ciphertext of a data block,
// simulating an attacker with physical access to the DIMM. A subsequent
// ReadBlock must fail with an integrity violation. It reports whether
// the block existed in NVM.
func (s *System) TamperData(block uint64, byteIdx int, mask byte) bool {
	return s.ctrl.Device().CorruptBlock(nvm.RegionData, block, byteIdx, mask)
}

// TamperCounter flips bits in a stored encryption counter block,
// simulating metadata tampering. Reads depending on that counter must
// fail verification once the cached copy is gone.
func (s *System) TamperCounter(counterBlock uint64, byteIdx int, mask byte) bool {
	return s.ctrl.Device().CorruptBlock(nvm.RegionCounter, counterBlock, byteIdx, mask)
}

// ReplayCounter overwrites a counter block in NVM with an earlier
// snapshot, simulating a replay attack. Use SnapshotCounter to capture
// the old value.
func (s *System) ReplayCounter(counterBlock uint64, snapshot [BlockSize]byte) {
	s.ctrl.Device().WriteRaw(nvm.RegionCounter, counterBlock, snapshot)
}

// SnapshotCounter captures the current NVM image of a counter block for
// a later ReplayCounter.
func (s *System) SnapshotCounter(counterBlock uint64) [BlockSize]byte {
	return s.ctrl.Device().Read(nvm.RegionCounter, counterBlock)
}

// CountersPerBlock returns how many data blocks one counter block
// covers (64 for the general split-counter layout, 8 for SGX-style).
func (s *System) CountersPerBlock() uint64 {
	switch s.scheme {
	case ASIT:
		return 8
	default:
		if _, ok := s.ctrl.(*memctrl.SGX); ok {
			return 8
		}
		return 64
	}
}

// EstimateRecoveryNS returns the analytic recovery-time model for a
// given scheme, memory size, and cache sizes — the numbers behind the
// paper's Figures 5 and 12 (see internal/recmodel).
func EstimateRecoveryNS(scheme Scheme, memBytes uint64, counterCacheBytes, treeCacheBytes uint64) uint64 {
	switch scheme {
	case Osiris:
		return recmodel.OsirisFullNS(memBytes, 1.05)
	case AGITRead, AGITPlus:
		return recmodel.AGITNS(counterCacheBytes, treeCacheBytes)
	case ASIT:
		return recmodel.ASITNS(counterCacheBytes + treeCacheBytes)
	case Strict:
		return 0
	}
	return 0
}

// EstimateTriadRecoveryNS returns the analytic recovery time of a
// Triad-NVM-style scheme that persists `levels` tree levels at run
// time, for comparison with EstimateRecoveryNS.
func EstimateTriadRecoveryNS(memBytes uint64, levels int) uint64 {
	return recmodel.TriadNS(memBytes, levels)
}

// FormatDuration renders nanoseconds human-readably ("7.8 h", "0.03 s").
func FormatDuration(ns uint64) string { return recmodel.FormatDuration(ns) }
