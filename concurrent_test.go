package anubis

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestSafeSystemConcurrentAccess(t *testing.T) {
	s, err := NewSafe(Config{Scheme: AGITPlus, MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const opsPerWorker = 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker owns a disjoint block range, so the final
			// contents are deterministic despite interleaving.
			base := uint64(w) * 512
			for i := 0; i < opsPerWorker; i++ {
				addr := base + uint64(i)%512
				if err := s.WriteBlock(addr, []byte{byte(w), byte(i)}); err != nil {
					errs <- fmt.Errorf("worker %d write: %w", w, err)
					return
				}
				if _, err := s.ReadBlock(addr); err != nil {
					errs <- fmt.Errorf("worker %d read: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Every worker's last value per block must verify.
	for w := 0; w < workers; w++ {
		base := uint64(w) * 512
		got, err := s.ReadBlock(base + uint64(opsPerWorker-1)%512)
		if err != nil {
			t.Fatalf("worker %d final read: %v", w, err)
		}
		if got[0] != byte(w) {
			t.Fatalf("worker %d data corrupted", w)
		}
	}
}

func TestSafeSystemCrashRecoverUnderUse(t *testing.T) {
	s, err := NewSafe(Config{Scheme: ASIT, MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if err := s.WriteBlock(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Crash()
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Audit()
	if err != nil || !rep.OK() {
		t.Fatalf("audit: %v %v", err, rep.Violations)
	}
	if s.NumBlocks() == 0 {
		t.Fatal("NumBlocks zero")
	}
	if s.Stats().WriteRequests != 100 {
		t.Fatalf("stats lost: %d", s.Stats().WriteRequests)
	}
}

// TestWriteBlocksMatchesSequential checks the batched write path is a
// pure pass-through: the same writes issued as one WriteBlocks batch
// and as individual WriteBlock calls must leave byte-identical
// persistent state (device digest), the same virtual clock, and the
// same statistics — and ReadBlockInto must agree with ReadBlock.
func TestWriteBlocksMatchesSequential(t *testing.T) {
	for _, scheme := range []Scheme{AGITPlus, ASIT} {
		t.Run(scheme.String(), func(t *testing.T) {
			mkWrites := func(n uint64) []BlockWrite {
				writes := make([]BlockWrite, 0, n)
				for i := uint64(0); i < n; i++ {
					var d [BlockSize]byte
					d[0], d[1] = byte(i), byte(i>>8)
					writes = append(writes, BlockWrite{Block: (i * 97) % 4096, Data: d})
				}
				return writes
			}
			seq, err := NewSafe(Config{Scheme: scheme, MemoryBytes: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			bat, err := NewSafe(Config{Scheme: scheme, MemoryBytes: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			writes := mkWrites(300)
			for _, w := range writes {
				if err := seq.WriteBlock(w.Block, w.Data[:]); err != nil {
					t.Fatal(err)
				}
			}
			if err := bat.WriteBlocks(writes); err != nil {
				t.Fatal(err)
			}
			if seq.Stats() != bat.Stats() {
				t.Fatalf("stats diverge:\n%+v\n%+v", seq.Stats(), bat.Stats())
			}
			sd := seq.sys.ctrl.Device().StateDigest()
			bd := bat.sys.ctrl.Device().StateDigest()
			if sd != bd {
				t.Fatalf("persistent state diverges: %#x vs %#x", sd, bd)
			}
			// ReadBlockInto agrees with ReadBlock on the batched system.
			for _, w := range writes[:20] {
				var got [BlockSize]byte
				if err := bat.ReadBlockInto(w.Block, &got); err != nil {
					t.Fatal(err)
				}
				want, err := seq.ReadBlock(w.Block)
				if err != nil {
					t.Fatal(err)
				}
				if string(got[:]) != string(want) {
					t.Fatalf("block %d: ReadBlockInto disagrees with ReadBlock", w.Block)
				}
			}
		})
	}
}

// TestSafeSystemForkUnderLoad hammers SafeSystem.Fork while writer
// goroutines are mutating the parent: each fork must observe a
// consistent snapshot (audit-clean, serviceable) and stay fully
// independent of the parent afterwards. This is the shard engine's host
// concurrency pattern (many goroutines around one controller family),
// and it runs under -race in CI via `make race`.
func TestSafeSystemForkUnderLoad(t *testing.T) {
	s, err := NewSafe(Config{Scheme: AGITPlus, MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	const forks = 6
	var wg sync.WaitGroup
	errs := make(chan error, writers+forks)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * 256
			for i := 0; i < 150; i++ {
				if err := s.WriteBlock(base+uint64(i)%256, []byte{byte(w), byte(i)}); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	children := make(chan *SafeSystem, forks)
	for f := 0; f < forks; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			child := s.Fork()
			// The child must be serviceable and verify cleanly even
			// though the parent is still being written to.
			if err := child.WriteBlock(4000+uint64(f), []byte{0xCC, byte(f)}); err != nil {
				errs <- fmt.Errorf("fork %d write: %w", f, err)
				return
			}
			rep, err := child.Audit()
			if err != nil || !rep.OK() {
				errs <- fmt.Errorf("fork %d audit: %v %v", f, err, rep.Violations)
				return
			}
			children <- child
		}(f)
	}
	wg.Wait()
	close(errs)
	close(children)
	for err := range errs {
		t.Fatal(err)
	}
	// Child writes never leak into the parent: block 4000+f was written
	// on forks only, so on the parent it must read back as absent (all
	// zero) or a writer value — never the fork's 0xCC marker.
	for f := 0; f < forks; f++ {
		got, err := s.ReadBlock(4000 + uint64(f))
		if err != nil {
			t.Fatalf("parent read after forks: %v", err)
		}
		if got[0] == 0xCC {
			t.Fatalf("fork %d write leaked into parent", f)
		}
	}
	// And each surviving child still audits clean after the parent kept
	// mutating — COW isolation holds in both directions.
	for child := range children {
		rep, err := child.Audit()
		if err != nil || !rep.OK() {
			t.Fatalf("child audit after parent mutation: %v %v", err, rep.Violations)
		}
	}
}

func TestWrapExisting(t *testing.T) {
	sys, err := New(Config{Scheme: Strict, MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	s := Wrap(sys)
	if err := s.WriteRange(100, []byte("wrapped")); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadRange(100, 7)
	if err != nil || string(got) != "wrapped" {
		t.Fatalf("range through wrapper: %v %q", err, got)
	}
	s.Flush()
}

// TestSafeSystemMethodParity enforces, by reflection, that every
// exported System method has a locked SafeSystem wrapper with the same
// signature (modulo *System -> *SafeSystem in results, so Fork stays
// closed over the wrapper type). Without this gate a method added to
// System — a digest accessor, a tamper hook — silently invites callers
// holding a SafeSystem to reach around the mutex.
func TestSafeSystemMethodParity(t *testing.T) {
	sysT := reflect.TypeOf(&System{})
	safeT := reflect.TypeOf(&SafeSystem{})
	sysPtr := sysT   // *System
	safePtr := safeT // *SafeSystem
	mapType := func(tt reflect.Type) reflect.Type {
		if tt == sysPtr {
			return safePtr
		}
		return tt
	}
	for i := 0; i < sysT.NumMethod(); i++ {
		m := sysT.Method(i)
		sm, ok := safeT.MethodByName(m.Name)
		if !ok {
			t.Errorf("SafeSystem is missing a locked wrapper for System.%s", m.Name)
			continue
		}
		// Compare signatures, skipping the receiver (input 0).
		mt, smt := m.Type, sm.Type
		if mt.NumIn() != smt.NumIn() || mt.NumOut() != smt.NumOut() {
			t.Errorf("SafeSystem.%s: arity %d->%d, want %d->%d",
				m.Name, smt.NumIn()-1, smt.NumOut(), mt.NumIn()-1, mt.NumOut())
			continue
		}
		for j := 1; j < mt.NumIn(); j++ {
			if want, got := mapType(mt.In(j)), smt.In(j); want != got {
				t.Errorf("SafeSystem.%s: param %d is %v, want %v", m.Name, j, got, want)
			}
		}
		for j := 0; j < mt.NumOut(); j++ {
			if want, got := mapType(mt.Out(j)), smt.Out(j); want != got {
				t.Errorf("SafeSystem.%s: result %d is %v, want %v", m.Name, j, got, want)
			}
		}
	}
}

// TestSafeSystemNewAccessors smoke-tests the parity wrappers added with
// the serving layer: back-pressure probes, clock advance, digest, image
// save, and the tamper/replay experiment hooks, all through the lock.
func TestSafeSystemNewAccessors(t *testing.T) {
	s, err := NewSafe(Config{Scheme: AGITPlus, MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Scheme(), AGITPlus; got != want {
		t.Fatalf("Scheme = %v, want %v", got, want)
	}
	if got, want := s.Size(), uint64(1<<20); got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	if s.CountersPerBlock() == 0 {
		t.Fatal("CountersPerBlock = 0")
	}
	if b := s.PushBudget(); b <= 0 {
		t.Fatalf("fresh system PushBudget = %d, want > 0", b)
	}
	// A write burst with no intervening reads must consume WPQ budget...
	for i := uint64(0); i < 64; i++ {
		if err := s.WriteBlock(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if s.WPQDrainNS() == 0 {
		t.Fatal("WPQDrainNS = 0 right after a write burst")
	}
	// ...and advancing the clock past the drain point must restore it.
	s.AdvanceClock(s.WPQDrainNS())
	if got, want := s.PushBudget(), s.PushBudget(); got != want {
		t.Fatalf("PushBudget unstable at rest: %d then %d", got, want)
	}
	if s.WPQDrainNS() != 0 {
		t.Fatalf("WPQDrainNS = %d after draining advance, want 0", s.WPQDrainNS())
	}
	d1 := s.StateDigest()
	if err := s.WriteBlock(9, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if d2 := s.StateDigest(); d2 == d1 {
		t.Fatal("StateDigest did not change across a write")
	}
	var img bytes.Buffer
	s.Flush()
	if err := s.SaveImage(&img); err != nil {
		t.Fatal(err)
	}
	if img.Len() == 0 {
		t.Fatal("SaveImage wrote nothing")
	}
	// Tamper/replay hooks operate through the lock and still trip the
	// integrity machinery.
	snap := s.SnapshotCounter(0)
	s.ReplayCounter(0, snap) // same value: harmless
	if !s.TamperData(9, 0, 0xFF) {
		t.Fatal("TamperData: block 9 missing from NVM")
	}
}
