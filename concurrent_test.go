package anubis

import (
	"fmt"
	"sync"
	"testing"
)

func TestSafeSystemConcurrentAccess(t *testing.T) {
	s, err := NewSafe(Config{Scheme: AGITPlus, MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const opsPerWorker = 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker owns a disjoint block range, so the final
			// contents are deterministic despite interleaving.
			base := uint64(w) * 512
			for i := 0; i < opsPerWorker; i++ {
				addr := base + uint64(i)%512
				if err := s.WriteBlock(addr, []byte{byte(w), byte(i)}); err != nil {
					errs <- fmt.Errorf("worker %d write: %w", w, err)
					return
				}
				if _, err := s.ReadBlock(addr); err != nil {
					errs <- fmt.Errorf("worker %d read: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Every worker's last value per block must verify.
	for w := 0; w < workers; w++ {
		base := uint64(w) * 512
		got, err := s.ReadBlock(base + uint64(opsPerWorker-1)%512)
		if err != nil {
			t.Fatalf("worker %d final read: %v", w, err)
		}
		if got[0] != byte(w) {
			t.Fatalf("worker %d data corrupted", w)
		}
	}
}

func TestSafeSystemCrashRecoverUnderUse(t *testing.T) {
	s, err := NewSafe(Config{Scheme: ASIT, MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if err := s.WriteBlock(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Crash()
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Audit()
	if err != nil || !rep.OK() {
		t.Fatalf("audit: %v %v", err, rep.Violations)
	}
	if s.NumBlocks() == 0 {
		t.Fatal("NumBlocks zero")
	}
	if s.Stats().WriteRequests != 100 {
		t.Fatalf("stats lost: %d", s.Stats().WriteRequests)
	}
}

func TestWrapExisting(t *testing.T) {
	sys, err := New(Config{Scheme: Strict, MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	s := Wrap(sys)
	if err := s.WriteRange(100, []byte("wrapped")); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadRange(100, 7)
	if err != nil || string(got) != "wrapped" {
		t.Fatalf("range through wrapper: %v %q", err, got)
	}
	s.Flush()
}
